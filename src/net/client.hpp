// Blocking client for the dmlfpd wire protocol — the library behind
// dmlfp_loadgen and every daemon test.  One Client is one connection;
// it multiplexes any number of opened streams over it and demultiplexes
// the interleaved reply stream (acks, retries, warnings, stats) from a
// single dispatch loop.
//
// Ingest is windowed go-back-N: send_events() frames a batch with the
// next sequence number and keeps it in an in-flight window until the
// daemon's cumulative INGEST_ACK covers it; a RETRY_AFTER rewinds the
// window to the daemon's expected sequence and resends from there.  The
// same window makes reconnect-with-resume one line: open the stream
// again on a fresh Client, and STREAM_OPENED.next_seq says exactly
// where the daemon's state ends and resending must begin.
#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <span>
#include <stdexcept>
#include <string>
#include <unordered_map>
#include <vector>

#include "net/socket.hpp"
#include "net/wire.hpp"

namespace dml::net {

/// Daemon-reported failure (an ERROR frame) or a transport/protocol
/// breakdown on the client side.
class ClientError : public std::runtime_error {
 public:
  ClientError(std::string what, std::optional<ErrorCode> code = std::nullopt)
      : std::runtime_error(std::move(what)), code_(code) {}

  /// The daemon's ERROR code, when the failure was an ERROR frame.
  std::optional<ErrorCode> code() const { return code_; }

 private:
  std::optional<ErrorCode> code_;
};

struct ClientConfig {
  /// Events per INGEST_EVENTS frame.
  std::size_t batch_events = 512;
  /// In-flight (unacknowledged) frames before send_events() blocks on
  /// the ack stream.
  std::size_t window_frames = 8;
};

class Client {
 public:
  /// Connects and completes the HELLO handshake.
  Client(const std::string& address, std::uint16_t port,
         ClientConfig config = {});
  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Opens (or re-attaches to) a named stream.  next_seq in the reply
  /// is where ingest must (re)start — the reconnect-resume point; the
  /// client adopts it as its sending sequence.
  StreamOpenedMsg open_stream(const std::string& name,
                              std::uint8_t flags = kOpenIngest);

  /// Queues events for ingest, framing them into batches; blocks only
  /// when the in-flight window is full (then processes acks/retries —
  /// and collects any warnings — until it drains).  Events must be fed
  /// in time order.
  void send_events(std::uint32_t stream_id,
                   std::span<const bgl::Event> events);

  /// Same, carrying raw RAS records (INGEST_RECORDS frames).
  void send_records(std::uint32_t stream_id,
                    std::span<const bgl::RasRecord> records);

  /// Flushes the partial batch and blocks until every in-flight frame
  /// is acknowledged.
  void flush(std::uint32_t stream_id);

  /// flush() + FINISH_STREAM, blocking until the daemon's FINISHED
  /// (warnings keep accumulating while waiting).
  StreamStatsMsg finish_stream(std::uint32_t stream_id);

  /// Blocks until one STATS_REPLY arrives.
  StreamStatsMsg stats(std::uint32_t stream_id);

  /// Drains whatever the socket has ready without blocking, then moves
  /// out every warning received so far.
  std::vector<WarningMsg> take_warnings();

  /// Blocks until at least one more frame arrives (or the daemon sends
  /// FINISHED for `stream_id`, see finished()); then as take_warnings().
  std::vector<WarningMsg> wait_warnings();

  /// FINISHED stats for a stream, once received (subscriber side).
  std::optional<StreamStatsMsg> finished(std::uint32_t stream_id) const;

  /// Orderly goodbye (BYE + close).  Implied by the destructor.
  void bye();

  /// Cumulative RETRY_AFTER frames honoured (rewinds + paced retries).
  std::uint64_t retries() const { return retries_; }

 private:
  struct InFlight {
    std::uint64_t seq = 0;
    std::vector<unsigned char> frame;  // encoded, ready to resend
  };
  struct StreamState {
    std::uint64_t next_seq = 0;        // next unused sequence number
    std::deque<InFlight> window;       // unacknowledged frames
    std::vector<bgl::Event> pending;   // partial batch
    std::optional<StreamStatsMsg> finished;
  };

  StreamState& state_of(std::uint32_t stream_id);
  void send_bytes(const unsigned char* data, std::size_t size);
  void send_frame_tracked(StreamState& state, std::uint32_t stream_id,
                          std::vector<unsigned char> frame);
  void flush_pending(std::uint32_t stream_id, StreamState& state);
  /// Reads once (blocking or not) and dispatches every complete frame.
  /// Returns false on clean EOF in nonblocking mode with nothing read.
  bool pump_incoming(bool blocking);
  void dispatch(FrameType type, std::span<const unsigned char> payload);
  /// Blocks until `state`'s window has room.
  void await_window(StreamState& state);

  FdHandle fd_;
  ClientConfig config_;
  std::vector<unsigned char> in_;
  std::vector<WarningMsg> warnings_;
  std::unordered_map<std::uint32_t, StreamState> streams_;
  std::uint64_t retries_ = 0;
  /// Total FINISHED frames dispatched; wait_warnings() unblocks when it
  /// advances.
  std::uint64_t finished_seen_ = 0;
  bool bye_sent_ = false;
  // Dispatch-loop latches for the blocking expect-reply calls.
  bool hello_acked_ = false;
  std::optional<StreamOpenedMsg> opened_;
  std::optional<StreamStatsMsg> stats_reply_;
  /// Set when a RETRY_AFTER arrived while awaiting FINISHED.
  bool retry_finish_ = false;
};

}  // namespace dml::net
