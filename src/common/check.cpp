#include "common/check.hpp"

#include <cstdio>
#include <cstdlib>

namespace dml::common::detail {

void check_failed(const char* file, int line, const char* condition,
                  const char* message) {
  if (message != nullptr) {
    std::fprintf(stderr, "DML_CHECK failed: %s (%s) at %s:%d\n", condition,
                 message, file, line);
  } else {
    std::fprintf(stderr, "DML_CHECK failed: %s at %s:%d\n", condition, file,
                 line);
  }
  std::fflush(stderr);
  std::abort();
}

}  // namespace dml::common::detail
