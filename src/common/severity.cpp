#include "common/severity.hpp"

namespace dml {

std::optional<Severity> severity_from_string(std::string_view text) {
  if (text == "INFO") return Severity::kInfo;
  if (text == "WARNING") return Severity::kWarning;
  if (text == "SEVERE") return Severity::kSevere;
  if (text == "ERROR") return Severity::kError;
  if (text == "FATAL") return Severity::kFatal;
  if (text == "FAILURE") return Severity::kFailure;
  return std::nullopt;
}

}  // namespace dml
