// RAS event severity levels, in increasing order of severity (paper §2.1).
#pragma once

#include <cstdint>
#include <optional>
#include <string_view>

namespace dml {

enum class Severity : std::uint8_t {
  kInfo = 0,
  kWarning = 1,
  kSevere = 2,
  kError = 3,
  kFatal = 4,
  kFailure = 5,
};

inline constexpr int kNumSeverities = 6;

/// FATAL and FAILURE records are the prediction targets; everything below
/// is "non-fatal" (informative / configuration-related) per paper §2.1.
constexpr bool is_fatal_severity(Severity s) { return s >= Severity::kFatal; }

constexpr std::string_view to_string(Severity s) {
  switch (s) {
    case Severity::kInfo: return "INFO";
    case Severity::kWarning: return "WARNING";
    case Severity::kSevere: return "SEVERE";
    case Severity::kError: return "ERROR";
    case Severity::kFatal: return "FATAL";
    case Severity::kFailure: return "FAILURE";
  }
  return "UNKNOWN";
}

std::optional<Severity> severity_from_string(std::string_view text);

}  // namespace dml
