// Always-on and debug-only invariant checks — the contract layer the
// golden tests pin implicitly, made explicit at the point of truth.
//
//   DML_CHECK(cond)            always compiled; aborts with file:line
//   DML_CHECK_MSG(cond, msg)   same, with a fixed explanatory string
//   DML_DCHECK(cond)           debug builds only; compiles to *nothing*
//   DML_DCHECK_MSG(cond, msg)  under NDEBUG (hot paths stay hot)
//
// Policy (DESIGN.md §10): DML_CHECK guards cheap, load-bearing
// invariants whose violation means the process state is already wrong
// (construction-time counts, configuration plumbing, stream health at
// the point a result is reported).  DML_DCHECK expresses hot-path
// contracts — probe-table load factors, dense-id bounds, time-ordering
// preconditions — that Debug/TSan/ASan CI builds verify on every run
// and Release serving never pays for.  A DCHECK condition must be free
// of side effects: in Release it is parsed but never evaluated.
//
// On failure the process aborts (SIGABRT) after printing one line to
// stderr:
//   DML_CHECK failed: <condition> (<message>) at <file>:<line>
// Abort rather than throw: a broken invariant means later code would
// compute garbage from corrupted state; unwinding through it only moves
// the crash somewhere less diagnosable.
#pragma once

namespace dml::common::detail {

/// Prints the one-line diagnostic and aborts.  Out of line so the
/// check macros inline to a compare + predictable branch.
[[noreturn]] void check_failed(const char* file, int line,
                               const char* condition, const char* message);

}  // namespace dml::common::detail

#if defined(__GNUC__) || defined(__clang__)
#define DML_CHECK_LIKELY(x) __builtin_expect(static_cast<bool>(x), true)
#else
#define DML_CHECK_LIKELY(x) static_cast<bool>(x)
#endif

#define DML_CHECK_MSG(condition, message)                             \
  (DML_CHECK_LIKELY(condition)                                        \
       ? static_cast<void>(0)                                         \
       : ::dml::common::detail::check_failed(__FILE__, __LINE__,      \
                                             #condition, (message)))

#define DML_CHECK(condition) DML_CHECK_MSG(condition, nullptr)

#ifdef NDEBUG
// sizeof keeps the condition parsed (typos still break the build, and
// variables referenced only by DCHECKs stay "used") without generating
// any code or evaluating any operand.
#define DML_DCHECK(condition) \
  static_cast<void>(sizeof((condition) ? 1 : 0))
#define DML_DCHECK_MSG(condition, message) \
  static_cast<void>(sizeof((condition) ? 1 : 0))
#else
#define DML_DCHECK(condition) DML_CHECK(condition)
#define DML_DCHECK_MSG(condition, message) DML_CHECK_MSG(condition, message)
#endif
