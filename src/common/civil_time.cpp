#include "common/civil_time.hpp"

#include <array>
#include <charconv>
#include <cstdio>

namespace dml {
namespace {

constexpr bool is_leap(int y) {
  return y % 4 == 0 && (y % 100 != 0 || y % 400 == 0);
}

constexpr int days_in_month(int y, int m) {
  constexpr std::array<int, 12> kDays = {31, 28, 31, 30, 31, 30,
                                         31, 31, 30, 31, 30, 31};
  if (m == 2 && is_leap(y)) return 29;
  return kDays[static_cast<std::size_t>(m - 1)];
}

std::optional<int> parse_int(std::string_view s) {
  int value = 0;
  const auto* first = s.data();
  const auto* last = s.data() + s.size();
  auto [ptr, ec] = std::from_chars(first, last, value);
  if (ec != std::errc{} || ptr != last) return std::nullopt;
  return value;
}

}  // namespace

std::int64_t days_from_civil(int y, int m, int d) {
  y -= m <= 2;
  const std::int64_t era = (y >= 0 ? y : y - 399) / 400;
  const auto yoe = static_cast<unsigned>(y - era * 400);            // [0,399]
  const unsigned doy =
      (153u * static_cast<unsigned>(m + (m > 2 ? -3 : 9)) + 2u) / 5u +
      static_cast<unsigned>(d) - 1u;                                // [0,365]
  const unsigned doe =
      yoe * 365u + yoe / 4u - yoe / 100u + doy;  // [0,146096]
  return era * 146097 + static_cast<std::int64_t>(doe) - 719468;
}

CivilTime civil_from_time(TimeSec t) {
  std::int64_t days = t / kSecondsPerDay;
  std::int64_t rem = t % kSecondsPerDay;
  if (rem < 0) {
    rem += kSecondsPerDay;
    --days;
  }
  // Inverse of days_from_civil (civil_from_days, same provenance).
  days += 719468;
  const std::int64_t era = (days >= 0 ? days : days - 146096) / 146097;
  const auto doe = static_cast<unsigned>(days - era * 146097);  // [0,146096]
  const unsigned yoe =
      (doe - doe / 1460 + doe / 36524 - doe / 146096) / 365;    // [0,399]
  const std::int64_t y = static_cast<std::int64_t>(yoe) + era * 400;
  const unsigned doy = doe - (365 * yoe + yoe / 4 - yoe / 100); // [0,365]
  const unsigned mp = (5 * doy + 2) / 153;                      // [0,11]
  const unsigned d = doy - (153 * mp + 2) / 5 + 1;              // [1,31]
  const unsigned m = mp + (mp < 10 ? 3 : static_cast<unsigned>(-9));

  CivilTime c;
  c.year = static_cast<int>(y + (m <= 2));
  c.month = static_cast<int>(m);
  c.day = static_cast<int>(d);
  c.hour = static_cast<int>(rem / 3600);
  c.minute = static_cast<int>((rem / 60) % 60);
  c.second = static_cast<int>(rem % 60);
  return c;
}

TimeSec time_from_civil(const CivilTime& c) {
  return days_from_civil(c.year, c.month, c.day) * kSecondsPerDay +
         c.hour * 3600 + c.minute * 60 + c.second;
}

std::string format_timestamp(TimeSec t) {
  const CivilTime c = civil_from_time(t);
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%04d-%02d-%02d-%02d.%02d.%02d", c.year,
                c.month, c.day, c.hour, c.minute, c.second);
  return buf;
}

std::optional<TimeSec> parse_timestamp(std::string_view text) {
  // Expected shape: YYYY-MM-DD-HH.MM.SS (19 chars).
  if (text.size() != 19) return std::nullopt;
  if (text[4] != '-' || text[7] != '-' || text[10] != '-' ||
      text[13] != '.' || text[16] != '.') {
    return std::nullopt;
  }
  const auto year = parse_int(text.substr(0, 4));
  const auto month = parse_int(text.substr(5, 2));
  const auto day = parse_int(text.substr(8, 2));
  const auto hour = parse_int(text.substr(11, 2));
  const auto minute = parse_int(text.substr(14, 2));
  const auto second = parse_int(text.substr(17, 2));
  if (!year || !month || !day || !hour || !minute || !second) {
    return std::nullopt;
  }
  if (*month < 1 || *month > 12) return std::nullopt;
  if (*day < 1 || *day > days_in_month(*year, *month)) return std::nullopt;
  if (*hour < 0 || *hour > 23) return std::nullopt;
  if (*minute < 0 || *minute > 59) return std::nullopt;
  if (*second < 0 || *second > 59) return std::nullopt;
  CivilTime c{*year, *month, *day, *hour, *minute, *second};
  return time_from_civil(c);
}

}  // namespace dml
