#include "common/failpoint.hpp"

#include <charconv>
#include <chrono>
#include <cstdlib>
#include <thread>

namespace dml::common {
namespace {

constexpr std::uint64_t kDefaultSeed = 0x9e3779b97f4a7c15ULL;

/// FNV-1a: stable per-name offset into the seed space, so each site gets
/// an independent deterministic stream.
std::uint64_t name_hash(std::string_view name) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const char c : name) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

std::optional<double> parse_double(std::string_view s) {
  // std::from_chars<double> is missing on some libstdc++ configurations
  // this repo targets; strtod on a bounded copy is portable.
  if (s.empty() || s.size() > 32) return std::nullopt;
  char buffer[33];
  s.copy(buffer, s.size());
  buffer[s.size()] = '\0';
  char* end = nullptr;
  const double value = std::strtod(buffer, &end);
  if (end != buffer + s.size()) return std::nullopt;
  return value;
}

template <typename T>
std::optional<T> parse_uint(std::string_view s) {
  T value{};
  const auto* first = s.data();
  const auto* last = s.data() + s.size();
  auto [ptr, ec] = std::from_chars(first, last, value);
  if (ec != std::errc{} || ptr != last) return std::nullopt;
  return value;
}

bool fail(std::string* error, std::string message) {
  if (error) *error = std::move(message);
  return false;
}

/// Error with a caret line pointing at `pos` inside the offending spec,
/// so a malformed CLI/env assignment is diagnosed exactly:
///   failpoint p must be a probability in [0, 1]
///     drop:p=1.5
///            ^
bool fail_at(std::string* error, std::string_view text, std::size_t pos,
             std::string message) {
  if (error) {
    message.append("\n  ");
    message.append(text);
    message.append("\n  ");
    message.append(std::min(pos, text.size()), ' ');
    message.push_back('^');
    *error = std::move(message);
  }
  return false;
}

}  // namespace

std::string_view to_string(FailAction action) {
  switch (action) {
    case FailAction::kOff: return "off";
    case FailAction::kThrow: return "throw";
    case FailAction::kDelay: return "delay";
    case FailAction::kDrop: return "drop";
    case FailAction::kCorrupt: return "corrupt";
  }
  return "unknown";
}

std::optional<FailpointSpec> parse_failpoint_spec(std::string_view text,
                                                  std::string* error) {
  FailpointSpec spec;
  // Tokenizer with position tracking: token_at holds the offset of the
  // token under inspection, so every rejection points at the exact
  // character that caused it.
  std::size_t start = 0;
  std::size_t token_at = 0;
  const auto next_token = [&]() -> std::optional<std::string_view> {
    if (start > text.size()) return std::nullopt;
    token_at = start;
    const std::size_t pos = text.find(':', start);
    const auto token = text.substr(
        start, pos == std::string_view::npos ? pos : pos - start);
    start = pos == std::string_view::npos ? text.size() + 1 : pos + 1;
    return token;
  };

  const auto action = next_token();
  if (!action || action->empty()) {
    fail(error, "empty failpoint spec");
    return std::nullopt;
  }
  if (*action == "off") {
    spec.action = FailAction::kOff;
  } else if (*action == "throw") {
    spec.action = FailAction::kThrow;
  } else if (*action == "delay") {
    spec.action = FailAction::kDelay;
  } else if (*action == "drop") {
    spec.action = FailAction::kDrop;
  } else if (*action == "corrupt") {
    spec.action = FailAction::kCorrupt;
  } else {
    fail_at(error, text, token_at,
            "unknown failpoint action '" + std::string(*action) +
                "' (throw|delay|drop|corrupt|off)");
    return std::nullopt;
  }

  bool seen_p = false, seen_ms = false, seen_after = false, seen_max = false;
  while (const auto token = next_token()) {
    if (token->empty()) {
      fail_at(error, text, token_at,
              "empty failpoint parameter (expected key=value)");
      return std::nullopt;
    }
    const std::size_t eq = token->find('=');
    if (eq == std::string_view::npos) {
      fail_at(error, text, token_at,
              "failpoint parameter '" + std::string(*token) +
                  "' is not key=value");
      return std::nullopt;
    }
    const auto key = token->substr(0, eq);
    const auto value = token->substr(eq + 1);
    const std::size_t value_at = token_at + eq + 1;
    if (value.empty()) {
      fail_at(error, text, value_at,
              "failpoint parameter '" + std::string(key) +
                  "' is missing a value");
      return std::nullopt;
    }
    const auto seen = [&](bool& flag) {
      if (flag) {
        fail_at(error, text, token_at,
                "duplicate failpoint parameter '" + std::string(key) + "'");
        return true;
      }
      flag = true;
      return false;
    };
    if (key == "p") {
      if (seen(seen_p)) return std::nullopt;
      const auto p = parse_double(value);
      if (!p || *p < 0.0 || *p > 1.0) {
        fail_at(error, text, value_at,
                "failpoint p must be a probability in [0, 1]");
        return std::nullopt;
      }
      spec.probability = *p;
    } else if (key == "ms") {
      if (seen(seen_ms)) return std::nullopt;
      const auto ms = parse_uint<std::uint32_t>(value);
      if (!ms) {
        fail_at(error, text, value_at,
                "failpoint ms must be a nonnegative integer");
        return std::nullopt;
      }
      spec.delay_ms = *ms;
    } else if (key == "after") {
      if (seen(seen_after)) return std::nullopt;
      const auto n = parse_uint<std::uint64_t>(value);
      if (!n) {
        fail_at(error, text, value_at,
                "failpoint after must be a nonnegative integer");
        return std::nullopt;
      }
      spec.after = *n;
    } else if (key == "max") {
      if (seen(seen_max)) return std::nullopt;
      const auto n = parse_uint<std::uint64_t>(value);
      if (!n) {
        fail_at(error, text, value_at,
                "failpoint max must be a nonnegative integer");
        return std::nullopt;
      }
      spec.max_triggers = *n;
    } else {
      fail_at(error, text, token_at,
              "unknown failpoint parameter '" + std::string(key) +
                  "' (p|ms|after|max)");
      return std::nullopt;
    }
  }
  return spec;
}

FailpointRegistry::FailpointRegistry() : seed_(kDefaultSeed) {}

FailpointRegistry& FailpointRegistry::instance() {
  static FailpointRegistry registry;
  return registry;
}

FailpointRegistry::Entry* FailpointRegistry::find(std::string_view name) {
  for (auto& entry : entries_) {
    if (entry.name == name) return &entry;
  }
  return nullptr;
}

const FailpointRegistry::Entry* FailpointRegistry::find(
    std::string_view name) const {
  for (const auto& entry : entries_) {
    if (entry.name == name) return &entry;
  }
  return nullptr;
}

void FailpointRegistry::recount_armed() {
  std::size_t armed = 0;
  for (const auto& entry : entries_) {
    if (entry.spec.action != FailAction::kOff) ++armed;
  }
  armed_.store(armed, std::memory_order_relaxed);
}

void FailpointRegistry::arm(std::string_view name, FailpointSpec spec) {
  MutexLock lock(mutex_);
  Entry* entry = find(name);
  if (!entry) {
    entries_.emplace_back();
    entry = &entries_.back();
    entry->name = std::string(name);
  }
  entry->spec = spec;
  entry->rng = Rng(seed_ ^ name_hash(name));
  entry->stats = Stats{};
  recount_armed();
}

bool FailpointRegistry::arm_from_string(std::string_view assignment,
                                        std::string* error) {
  const std::size_t eq = assignment.find('=');
  if (eq == std::string_view::npos || eq == 0) {
    fail(error, "failpoint must be name=spec, got '" +
                    std::string(assignment) + "'");
    return false;
  }
  const auto spec = parse_failpoint_spec(assignment.substr(eq + 1), error);
  if (!spec) return false;
  arm(assignment.substr(0, eq), *spec);
  return true;
}

void FailpointRegistry::disarm(std::string_view name) {
  MutexLock lock(mutex_);
  if (Entry* entry = find(name)) {
    entry->spec.action = FailAction::kOff;
    recount_armed();
  }
}

void FailpointRegistry::reset() {
  MutexLock lock(mutex_);
  entries_.clear();
  seed_ = kDefaultSeed;
  armed_.store(0, std::memory_order_relaxed);
}

void FailpointRegistry::reseed(std::uint64_t seed) {
  MutexLock lock(mutex_);
  seed_ = seed;
  for (auto& entry : entries_) {
    entry.rng = Rng(seed_ ^ name_hash(entry.name));
  }
}

FailpointRegistry::Stats FailpointRegistry::stats(
    std::string_view name) const {
  MutexLock lock(mutex_);
  const Entry* entry = find(name);
  return entry ? entry->stats : Stats{};
}

std::vector<std::pair<std::string, FailpointRegistry::Stats>>
FailpointRegistry::all() const {
  MutexLock lock(mutex_);
  std::vector<std::pair<std::string, Stats>> out;
  out.reserve(entries_.size());
  for (const auto& entry : entries_) {
    out.emplace_back(entry.name, entry.stats);
  }
  return out;
}

FailAction FailpointRegistry::evaluate(std::string_view name) {
  FailAction action = FailAction::kOff;
  std::uint32_t delay_ms = 0;
  {
    MutexLock lock(mutex_);
    Entry* entry = find(name);
    if (!entry || entry->spec.action == FailAction::kOff) {
      return FailAction::kOff;
    }
    ++entry->stats.evaluations;
    if (entry->stats.evaluations <= entry->spec.after) {
      return FailAction::kOff;
    }
    if (entry->spec.max_triggers > 0 &&
        entry->stats.triggers >= entry->spec.max_triggers) {
      return FailAction::kOff;
    }
    if (entry->spec.probability < 1.0 &&
        entry->rng.uniform() >= entry->spec.probability) {
      return FailAction::kOff;
    }
    ++entry->stats.triggers;
    action = entry->spec.action;
    delay_ms = entry->spec.delay_ms;
  }
  // Act outside the lock: a sleeping or throwing failpoint must not
  // serialize every other instrumented site behind it.
  if (action == FailAction::kThrow) {
    throw FailpointError(std::string(name));
  }
  if (action == FailAction::kDelay && delay_ms > 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(delay_ms));
  }
  return action;
}

}  // namespace dml::common
