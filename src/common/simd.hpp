// Runtime-dispatched SIMD kernels for the bitset hot paths (DESIGN.md
// §13): tidset intersection-and-popcount (the vertical Apriori L2
// counter) and masked subset counting (the L3+ candidate counter).
//
// Three variants of each kernel are compiled into every build:
//   kScalar  — portable std::popcount word loop; always available and
//              the reference the other variants must match bit for bit.
//   kAvx2    — 256-bit AND + the pshufb nibble-LUT popcount.
//   kAvx512  — 512-bit AND + VPOPCNTDQ (and 8-rows-per-register subset
//              tests for narrow transaction rows).
// Variants are emitted with per-function target attributes, so the
// translation unit builds with the default (baseline) architecture
// flags; which one runs is decided once, at first use, from CPUID —
// never from compile flags — and can be overridden:
//   - cmake -DDMLFP_DISABLE_SIMD=ON compiles the vector variants out
//     entirely (portable-fallback builds for foreign architectures);
//   - DMLFP_SIMD=scalar|avx2|avx512 pins dispatch at process start
//     (the forced-scalar CI lane, A/B benchmarking);
//   - force_variant() pins it programmatically (benches, fuzz tests).
// Every kernel is a pure integer reduction, so all variants are
// bit-exact by construction; tests/common/test_simd.cpp fuzzes them
// against each other on awkward widths to keep it that way.
#pragma once

#include <bit>

#include "common/annotations.hpp"
#include <cstddef>
#include <cstdint>
#include <string_view>

namespace dml::simd {

enum class Variant : int { kScalar = 0, kAvx2 = 1, kAvx512 = 2 };

std::string_view to_string(Variant variant);

/// Popcount of (a[i] & b[i]) over `words` words — tidset intersection
/// support.
using AndPopcountFn = std::uint64_t (*)(const std::uint64_t* a,
                                        const std::uint64_t* b,
                                        std::size_t words);

/// Number of rows (each `stride` words apart, `words` words wide) that
/// cover `mask`: (row & mask) == mask — candidate support counting.
using SubsetCountFn = std::uint32_t (*)(const std::uint64_t* rows,
                                        std::size_t n_rows,
                                        std::size_t stride,
                                        const std::uint64_t* mask,
                                        std::size_t words);

struct Kernels {
  Variant variant = Variant::kScalar;
  AndPopcountFn and_popcount = nullptr;
  SubsetCountFn subset_count = nullptr;
};

/// The portable reference kernels (always compiled, never dispatched
/// away — the bit-identity anchor for tests and golden benches).
std::uint64_t and_popcount_scalar(const std::uint64_t* a,
                                  const std::uint64_t* b, std::size_t words);
std::uint32_t subset_count_scalar(const std::uint64_t* rows,
                                  std::size_t n_rows, std::size_t stride,
                                  const std::uint64_t* mask,
                                  std::size_t words);

/// True if `variant` is both compiled in and supported by this CPU.
/// kScalar is always available.
bool supported(Variant variant);

/// The best supported variant (after the DMLFP_SIMD override, if set).
Variant best_variant();

/// Kernel table for an explicit variant; DML_CHECKs supported().
const Kernels& kernels(Variant variant);

/// The dispatched kernel table: resolved once, at first call, to
/// best_variant().  All hot paths go through this.
const Kernels& active();

/// Pins dispatch to `variant` (DML_CHECKs supported()).  For benches
/// and tests; call before or between timed regions, not concurrently
/// with kernel users.
void force_variant(Variant variant);

// ---- Convenience wrappers over the dispatched table --------------------

inline std::uint64_t DML_HOT and_popcount(const std::uint64_t* a,
                                  const std::uint64_t* b, std::size_t words) {
  return active().and_popcount(a, b, words);
}

inline std::uint32_t DML_HOT subset_count(const std::uint64_t* rows,
                                  std::size_t n_rows, std::size_t stride,
                                  const std::uint64_t* mask,
                                  std::size_t words) {
  return active().subset_count(rows, n_rows, stride, mask, words);
}

}  // namespace dml::simd
