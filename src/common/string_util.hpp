// Small string helpers used by the log text format and report printers.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace dml {

/// Splits on a single-character delimiter; keeps empty fields.
std::vector<std::string_view> split(std::string_view text, char delim);

std::string_view trim(std::string_view text);

std::string join(const std::vector<std::string>& parts,
                 std::string_view separator);

/// True if `text` starts with `prefix`.
bool starts_with(std::string_view text, std::string_view prefix);

/// Lower-cases ASCII.
std::string to_lower(std::string_view text);

/// Replaces every occurrence of `from` (non-empty) with `to`.
std::string replace_all(std::string_view text, std::string_view from,
                        std::string_view to);

}  // namespace dml
