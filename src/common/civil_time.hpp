// Minimal proleptic-Gregorian civil time <-> epoch-seconds conversion,
// used only to render and parse human-readable timestamps in the RAS log
// text format ("YYYY-MM-DD-HH.MM.SS", the Blue Gene/L convention).
// No timezone handling: log time is wall time at the site.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "common/types.hpp"

namespace dml {

struct CivilTime {
  int year = 1970;
  int month = 1;  // 1..12
  int day = 1;    // 1..31
  int hour = 0;   // 0..23
  int minute = 0; // 0..59
  int second = 0; // 0..59

  friend bool operator==(const CivilTime&, const CivilTime&) = default;
};

/// Days since 1970-01-01 for a civil date (valid across the full int range;
/// Howard Hinnant's algorithm).
std::int64_t days_from_civil(int year, int month, int day);

CivilTime civil_from_time(TimeSec t);
TimeSec time_from_civil(const CivilTime& c);

/// Renders "YYYY-MM-DD-HH.MM.SS" (Blue Gene/L RAS timestamp shape).
std::string format_timestamp(TimeSec t);

/// Parses the format produced by format_timestamp. Returns nullopt on
/// malformed input.
std::optional<TimeSec> parse_timestamp(std::string_view text);

}  // namespace dml
