// Deterministic fault injection — named failpoints compiled into the
// hot paths of the serving stack (preprocess push, log parsing, retrain
// builds, snapshot publication, shard feed/workers) and armed at runtime
// from tests or `dmlfp run --failpoint name=spec`.
//
// A failpoint is free when nothing is armed: the hot-path hook is one
// relaxed atomic load.  Once armed, each evaluation draws from a
// per-failpoint xoshiro stream seeded from a global seed XOR the name
// hash, so a single-threaded site triggers at a reproducible position in
// its call sequence regardless of what other sites do.
//
// Actions:
//   throw    raise FailpointError out of the instrumented call
//   delay    sleep `ms` of wall time, then continue normally
//   drop     returned to the call site: discard the unit of work
//            (record/event) and count it
//   corrupt  returned to the call site: mangle the unit of work so the
//            downstream parser/validator must reject it
//
// Spec grammar (see parse_failpoint_spec):
//   action[:p=PROB][:ms=MILLIS][:after=N][:max=N]
// e.g.  throw            — every evaluation throws
//       drop:p=0.01      — drop ~1% of evaluations
//       delay:ms=5:p=0.1 — 5 ms stall on ~10% of evaluations
//       throw:after=100:max=2 — skip 100 evaluations, then throw twice
#pragma once

#include <atomic>
#include <cstdint>
#include <optional>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/annotations.hpp"
#include "common/rng.hpp"

namespace dml::common {

enum class FailAction { kOff, kThrow, kDelay, kDrop, kCorrupt };

std::string_view to_string(FailAction action);

/// Raised by a triggered `throw` failpoint.
class FailpointError : public std::runtime_error {
 public:
  explicit FailpointError(std::string name)
      : std::runtime_error("failpoint triggered: " + name),
        name_(std::move(name)) {}

  const std::string& name() const { return name_; }

 private:
  std::string name_;
};

struct FailpointSpec {
  FailAction action = FailAction::kOff;
  /// Per-evaluation trigger probability in [0, 1].
  double probability = 1.0;
  /// Wall sleep per trigger (kDelay only).
  std::uint32_t delay_ms = 1;
  /// Evaluations to let pass before the failpoint can trigger.
  std::uint64_t after = 0;
  /// Triggers after which the failpoint stops firing (0 = unlimited).
  std::uint64_t max_triggers = 0;
};

/// Parses the spec grammar above; nullopt on malformed input (with the
/// reason in *error when non-null).
std::optional<FailpointSpec> parse_failpoint_spec(std::string_view text,
                                                  std::string* error = nullptr);

/// The names compiled into the codebase.  Arming an unknown name is
/// legal (it simply never fires); these constants keep tests, the CLI
/// and the instrumented sites in sync.
namespace failpoints {
/// preprocess::StreamingPipeline::push — drop swallows the raw record.
inline constexpr std::string_view kPreprocessPush = "preprocess.push";
/// logio::RecordReader::next — corrupt mangles the line before parsing,
/// drop skips the record; both are counted in the reader's ReadStats.
inline constexpr std::string_view kLogioParse = "logio.parse";
/// RetrainScheduler's build body — throw exercises the bounded-retry /
/// keep-last-snapshot degradation path; delay simulates a slow build.
inline constexpr std::string_view kRetrainBuild = "retrain.build";
/// CorrelationLearner::learn (the event-graph build) — throw fails the
/// fourth learner specifically, exercising the scheduler's per-learner
/// failure attribution while serving keeps the last good snapshot.
inline constexpr std::string_view kCorrelationBuild =
    "learners.correlation.build";
/// meta::SnapshotPublisher::store — delay stalls publication.
inline constexpr std::string_view kSnapshotPublish = "snapshot.publish";
/// ShardedEngine producer, before the shard-queue push — drop discards
/// the event (counted in SessionStats::records_rejected).
inline constexpr std::string_view kEngineFeed = "engine.feed";
/// ShardedEngine worker, per event — throw quarantines the shard, drop
/// skips the event (counted), delay stalls the queue (backpressure).
inline constexpr std::string_view kShardWorker = "shard.worker";
/// ServingCore::observe — throw/delay only; drop/corrupt are ignored
/// here because the core has no owner-visible skip counter.
inline constexpr std::string_view kServingObserve = "serving.observe";
/// storage::LogWriter::append — throw aborts before any byte is
/// written; corrupt writes a torn record prefix and then throws (the
/// simulated kill mid-write the crash-recovery chaos tier sweeps).
inline constexpr std::string_view kStorageAppend = "storage.append";
/// storage::LogWriter segment roll — throw aborts before the roll;
/// corrupt seals the segment but "crashes" before its sidecar index is
/// written, exercising the index-rebuild recovery path.
inline constexpr std::string_view kStorageRoll = "storage.roll";
/// storage::LogWriter::sync — throw simulates a failed fsync; the
/// writer refuses to report durability it does not have.
inline constexpr std::string_view kStorageSync = "storage.sync";
/// net::Daemon acceptor, per accepted connection — throw closes the new
/// connection immediately (the client sees a reset), drop refuses it
/// silently; both are counted in DaemonStats::accepts_failed.
inline constexpr std::string_view kNetAccept = "net.accept";
/// net::Daemon reactor read path, per readable wakeup — throw/corrupt
/// tears the connection down (counted), drop skips this wakeup without
/// reading (level-triggered epoll re-reports it, so the connection
/// survives with the frame merely delayed).
inline constexpr std::string_view kNetRead = "net.read";
/// net::Daemon reactor write path, per writable flush — throw tears the
/// connection down (counted); delay stalls the flush (slow-subscriber
/// backpressure).
inline constexpr std::string_view kNetWrite = "net.write";
}  // namespace failpoints

class FailpointRegistry {
 public:
  static FailpointRegistry& instance();

  struct Stats {
    std::uint64_t evaluations = 0;
    std::uint64_t triggers = 0;
  };

  /// Arms (or re-arms) a failpoint; counters for the name are reset.
  void arm(std::string_view name, FailpointSpec spec);

  /// Arms from a "name=spec" assignment; false + *error on bad input.
  bool arm_from_string(std::string_view assignment,
                       std::string* error = nullptr);

  /// Stops a failpoint from firing; its counters remain readable.
  void disarm(std::string_view name);

  /// Disarms everything and clears all counters (test isolation).
  void reset();

  /// Reseeds every per-failpoint RNG stream; takes effect for failpoints
  /// armed afterwards (arm re-derives the stream from the current seed).
  void reseed(std::uint64_t seed);

  Stats stats(std::string_view name) const;

  /// Every name ever armed since the last reset, with its counters.
  std::vector<std::pair<std::string, Stats>> all() const;

  bool any_armed() const {
    return armed_.load(std::memory_order_relaxed) > 0;
  }

  /// Slow path of failpoint(); see below.
  FailAction evaluate(std::string_view name);

 private:
  struct Entry {
    std::string name;
    FailpointSpec spec;
    Rng rng{0};
    Stats stats;
  };

  FailpointRegistry();
  Entry* find(std::string_view name) DML_REQUIRES(mutex_);
  const Entry* find(std::string_view name) const DML_REQUIRES(mutex_);
  void recount_armed() DML_REQUIRES(mutex_);

  mutable Mutex mutex_;
  std::vector<Entry> entries_ DML_GUARDED_BY(mutex_);
  std::uint64_t seed_ DML_GUARDED_BY(mutex_);
  /// armed-count fast path: read lock-free by failpoint(); written only
  /// under mutex_ (recount_armed / reset).
  std::atomic<std::size_t> armed_{0};
};

/// The hot-path hook.  Returns kOff with one relaxed atomic load when
/// nothing is armed anywhere.  kThrow raises FailpointError from inside;
/// kDelay sleeps, then returns kDelay; kDrop/kCorrupt are returned for
/// the call site to interpret (and count).
inline FailAction failpoint(std::string_view name) {
  FailpointRegistry& registry = FailpointRegistry::instance();
  if (!registry.any_armed()) return FailAction::kOff;
  return registry.evaluate(name);
}

}  // namespace dml::common
