// Clang thread-safety annotations and capability-annotated mutex
// wrappers — the compile-time half of the codebase's race defense.  The
// dynamic half (TSan CI) only checks the interleavings the test suite
// happens to execute; these annotations reject lock-discipline bugs on
// every build, for every path, before anything runs.
//
// Under Clang, `-Wthread-safety` (promoted to an error in the
// static-analysis CI job) verifies that every access to a
// DML_GUARDED_BY member happens with its capability held and that every
// DML_REQUIRES function is called under the right lock.  Under GCC (the
// local toolchain) every macro expands to nothing and the wrappers are
// plain std::mutex / std::condition_variable shims, so the annotations
// cost nothing where they cannot be checked.
//
// Style notes for annotated code:
//  - Guarded members name their capability at the declaration:
//      std::queue<Task> queue_ DML_GUARDED_BY(mutex_);
//  - Private helpers that assume the lock is already held are annotated
//    DML_REQUIRES(mutex_) instead of re-locking.
//  - Condition-variable waits use explicit `while` loops rather than
//    predicate lambdas: the analysis does not propagate capabilities
//    into lambda bodies, so guarded reads must stay in the enclosing
//    function.
#pragma once

#include <condition_variable>
#include <mutex>

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(guarded_by)
#define DML_THREAD_ANNOTATION(x) __attribute__((x))
#endif
#endif
#ifndef DML_THREAD_ANNOTATION
#define DML_THREAD_ANNOTATION(x)  // not Clang: annotations vanish
#endif

/// Declares a type to be a capability (lockable).
#define DML_CAPABILITY(x) DML_THREAD_ANNOTATION(capability(x))
/// Declares an RAII type that acquires in its constructor and releases
/// in its destructor.
#define DML_SCOPED_CAPABILITY DML_THREAD_ANNOTATION(scoped_lockable)
/// Member is readable/writable only while `x` is held.
#define DML_GUARDED_BY(x) DML_THREAD_ANNOTATION(guarded_by(x))
/// Pointee is guarded by `x` (the pointer itself is not).
#define DML_PT_GUARDED_BY(x) DML_THREAD_ANNOTATION(pt_guarded_by(x))
/// Function must be called with the listed capabilities held.
#define DML_REQUIRES(...) \
  DML_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
/// Function must be called with the listed capabilities NOT held
/// (deadlock prevention: it will acquire them itself).
#define DML_EXCLUDES(...) DML_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))
/// Function acquires the listed capabilities and holds them on return.
#define DML_ACQUIRE(...) \
  DML_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
/// Function releases the listed capabilities.
#define DML_RELEASE(...) \
  DML_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
/// Function acquires the capability iff it returns `value`.
#define DML_TRY_ACQUIRE(value, ...) \
  DML_THREAD_ANNOTATION(try_acquire_capability(value, __VA_ARGS__))
/// Function returns a reference to the given capability.
#define DML_RETURN_CAPABILITY(x) DML_THREAD_ANNOTATION(lock_returned(x))
/// Escape hatch; every use needs a comment saying why the analysis
/// cannot see the invariant.
#define DML_NO_THREAD_SAFETY_ANALYSIS \
  DML_THREAD_ANNOTATION(no_thread_safety_analysis)

// ---- dml_lint annotations ----------------------------------------------
// Markers consumed by tools/lint/dml_lint (DESIGN.md §15).  They carry
// project contracts no generic analysis understands: which functions are
// on the serving hot path, which run on a reactor thread, and what the
// cross-class lock acquisition order is.  Under Clang the function
// markers also emit an `annotate` attribute so the AST engine can read
// them without re-lexing; under GCC they vanish (same policy as the
// thread-safety macros above).

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(annotate)
#define DML_LINT_ANNOTATION(x) __attribute__((annotate(x)))
#endif
#endif
#ifndef DML_LINT_ANNOTATION
#define DML_LINT_ANNOTATION(x)  // not Clang: annotations vanish
#endif

/// Serving hot path: the function body must not allocate.  dml_lint
/// (check hot-alloc) flags `new`, malloc-family calls, and allocating
/// container mutations lexically inside the marked definition.  Place
/// between the return type and the name of the *definition*:
///   void DML_HOT Predictor::observe_into(...) { ... }
#define DML_HOT DML_LINT_ANNOTATION("dml::hot")

/// Runs on a net::Reactor event-loop thread: the body must never block.
/// dml_lint (check reactor-blocking) flags CondVar::wait, sleeps,
/// blocking file I/O, and direct engine calls inside the marked
/// definition.  epoll_wait itself lives in Reactor::run, which is the
/// loop, not a callback — it is deliberately unmarked.
#define DML_REACTOR_CONTEXT DML_LINT_ANNOTATION("dml::reactor_context")

/// Escape hatch for an allocation inside a DML_HOT body.  Must carry a
/// non-empty string-literal rationale and sit on its own line directly
/// above the allocating statement it excuses (it covers exactly one
/// following statement line).  The static_assert forces the rationale
/// to be a real string literal on every compiler.
#define DML_ALLOW_ALLOC(reason) static_assert(true, "" reason "")

/// Declared lock-order edges for dml_lint's acquired-before graph
/// (check lock-order).  Arguments are canonical lock names — the unique
/// member name of the Mutex, as a string — so edges can cross classes
/// without the declaration-order gymnastics clang's acquired_before
/// attribute needs.  Attach to the Mutex member declaration:
///   common::Mutex sub_mutex DML_ACQUIRED_BEFORE("out_mutex");
/// Every lexically nested MutexLock pair must be covered by a declared
/// edge, and the declared graph must stay acyclic.
#define DML_ACQUIRED_BEFORE(...)
#define DML_ACQUIRED_AFTER(...)

namespace dml::common {

/// std::mutex with a capability annotation, so members can be declared
/// DML_GUARDED_BY(mutex_) and the analysis can track lock/unlock.
class DML_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() DML_ACQUIRE() { mutex_.lock(); }
  void unlock() DML_RELEASE() { mutex_.unlock(); }
  bool try_lock() DML_TRY_ACQUIRE(true) { return mutex_.try_lock(); }

 private:
  friend class MutexLock;
  std::mutex mutex_;
};

/// Scoped lock over a Mutex (the annotated replacement for
/// std::scoped_lock / std::unique_lock).  Supports early release —
/// `unlock()` before a notify — and re-acquisition; the destructor
/// releases only if still held.
class DML_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mutex) DML_ACQUIRE(mutex)
      : lock_(mutex.mutex_) {}
  ~MutexLock() DML_RELEASE() {}

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

  /// Early release (e.g. unlock before notifying a condition variable).
  void unlock() DML_RELEASE() { lock_.unlock(); }
  /// Re-acquire after unlock().
  void lock() DML_ACQUIRE() { lock_.lock(); }

 private:
  friend class CondVar;
  std::unique_lock<std::mutex> lock_;
};

/// std::condition_variable bound to MutexLock.  wait() atomically
/// releases the lock while blocked and re-acquires before returning; to
/// the analysis (as to the caller) the capability is held across the
/// call.  Use explicit `while (!predicate) cv.wait(lock);` loops — see
/// the file comment.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void wait(MutexLock& lock) { cv_.wait(lock.lock_); }
  void notify_one() noexcept { cv_.notify_one(); }
  void notify_all() noexcept { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace dml::common
