// Deterministic, seedable random number generation for the log simulator
// and the test suites.
//
// xoshiro256** core with a SplitMix64 seeder; small, fast, and — unlike
// std::mt19937 + std::*_distribution — bit-reproducible across standard
// library implementations, which the golden-log tests rely on.
#pragma once

#include <array>
#include <cmath>
#include <cstdint>
#include <numbers>
#include <span>

namespace dml {

/// SplitMix64: used to expand a single 64-bit seed into a full state.
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) : state_(seed) {}

  constexpr std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256** 1.0 (Blackman & Vigna), public-domain reference algorithm.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9c0ffee123456789ULL) {
    SplitMix64 sm(seed);
    for (auto& word : state_) word = sm.next();
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }

  result_type operator()() { return next_u64(); }

  std::uint64_t next_u64() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1) with 53 bits of entropy.
  double uniform() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  /// Uniform integer in [0, n); n must be > 0. Uses rejection to avoid
  /// modulo bias (negligible here, but cheap to do right).
  std::uint64_t uniform_index(std::uint64_t n) {
    const std::uint64_t threshold = (0ULL - n) % n;
    for (;;) {
      const std::uint64_t r = next_u64();
      if (r >= threshold) return r % n;
    }
  }

  /// Bernoulli trial with success probability p.
  bool bernoulli(double p) { return uniform() < p; }

  /// Exponential variate with the given mean (= 1/rate).
  double exponential(double mean) {
    double u = uniform();
    if (u <= 0.0) u = 0x1.0p-53;  // avoid log(0)
    return -mean * std::log(u);
  }

  /// Weibull variate with shape k and scale lambda (inverse-CDF sampling).
  double weibull(double shape, double scale) {
    double u = uniform();
    if (u <= 0.0) u = 0x1.0p-53;
    return scale * std::pow(-std::log(1.0 - u), 1.0 / shape);
  }

  /// Log-normal variate: exp(N(mu, sigma^2)).
  double lognormal(double mu, double sigma) {
    return std::exp(mu + sigma * normal());
  }

  /// Standard normal variate (Box-Muller, one value per call for
  /// reproducibility simplicity).
  double normal() {
    double u1 = uniform();
    if (u1 <= 0.0) u1 = 0x1.0p-53;
    const double u2 = uniform();
    return std::sqrt(-2.0 * std::log(u1)) *
           std::cos(2.0 * std::numbers::pi * u2);
  }

  /// Poisson variate; inversion for small means, normal approximation
  /// (rounded, clamped at 0) for large means — adequate for workload
  /// modelling where per-interval means are modest.
  std::uint64_t poisson(double mean) {
    if (mean <= 0.0) return 0;
    if (mean < 48.0) {
      const double l = std::exp(-mean);
      std::uint64_t k = 0;
      double p = 1.0;
      do {
        ++k;
        p *= uniform();
      } while (p > l);
      return k - 1;
    }
    const double v = mean + std::sqrt(mean) * normal();
    return v <= 0.0 ? 0 : static_cast<std::uint64_t>(std::llround(v));
  }

  /// Picks an index in [0, weights.size()) proportionally to weights.
  /// Weights need not be normalised; non-positive weights are skipped.
  std::size_t weighted_index(std::span<const double> weights) {
    double total = 0.0;
    for (double w : weights) {
      if (w > 0.0) total += w;
    }
    if (total <= 0.0) return 0;
    double x = uniform() * total;
    for (std::size_t i = 0; i < weights.size(); ++i) {
      if (weights[i] <= 0.0) continue;
      x -= weights[i];
      if (x < 0.0) return i;
    }
    return weights.size() - 1;
  }

  /// Derives an independent stream (for per-subsystem generators).
  Rng fork() { return Rng(next_u64()); }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_;
};

}  // namespace dml
