#include "common/thread_pool.hpp"

#include <algorithm>
#include <atomic>

namespace dml {

ThreadPool::ThreadPool(std::size_t num_threads) {
  if (num_threads == 0) {
    num_threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::scoped_lock lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& worker : workers_) worker.join();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock(mutex_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and drained
      task = std::move(queue_.front());
      queue_.pop();
    }
    task();
  }
}

void ThreadPool::parallel_for(std::size_t begin, std::size_t end,
                              const std::function<void(std::size_t)>& fn) {
  if (begin >= end) return;
  const std::size_t n = end - begin;
  const std::size_t num_chunks = std::min(n, size() + 1);
  if (num_chunks <= 1) {
    for (std::size_t i = begin; i < end; ++i) fn(i);
    return;
  }
  const std::size_t chunk = (n + num_chunks - 1) / num_chunks;
  std::vector<std::future<void>> pending;
  pending.reserve(num_chunks - 1);
  // Chunks after the first go to the pool; the first runs inline so the
  // calling thread is never idle.
  for (std::size_t c = 1; c < num_chunks; ++c) {
    const std::size_t lo = begin + c * chunk;
    const std::size_t hi = std::min(end, lo + chunk);
    if (lo >= hi) break;
    pending.push_back(submit([lo, hi, &fn] {
      for (std::size_t i = lo; i < hi; ++i) fn(i);
    }));
  }
  const std::size_t first_hi = std::min(end, begin + chunk);
  for (std::size_t i = begin; i < first_hi; ++i) fn(i);
  for (auto& f : pending) f.get();
}

ThreadPool& ThreadPool::shared() {
  static ThreadPool pool;
  return pool;
}

}  // namespace dml
