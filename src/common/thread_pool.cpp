#include "common/thread_pool.hpp"

#include <algorithm>
#include <atomic>
#include <limits>

namespace dml {

namespace {
/// True on threads that belong to some ThreadPool.  parallel_for from
/// inside a pool task must not block on sub-tasks of the same pool (all
/// workers could end up waiting on queued chunks nobody is left to run),
/// so it degrades to a serial loop there.
thread_local bool t_pool_worker = false;
}  // namespace

ThreadPool::ThreadPool(std::size_t num_threads) {
  if (num_threads == 0) {
    num_threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    common::MutexLock lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& worker : workers_) worker.join();
}

void ThreadPool::worker_loop() {
  t_pool_worker = true;
  for (;;) {
    std::function<void()> task;
    {
      common::MutexLock lock(mutex_);
      // Explicit loop, not a predicate lambda: thread-safety analysis
      // does not see capabilities inside lambda bodies.
      while (!stopping_ && queue_.empty()) cv_.wait(lock);
      if (queue_.empty()) return;  // stopping_ and drained
      task = std::move(queue_.front());
      queue_.pop();
    }
    task();
  }
}

std::size_t ThreadPool::max_parallel_chunks() const {
  return t_pool_worker ? 1 : size() + 1;
}

void ThreadPool::parallel_for(std::size_t begin, std::size_t end,
                              const std::function<void(std::size_t)>& fn) {
  parallel_for_ranges(begin, end,
                      [&fn](std::size_t, std::size_t lo, std::size_t hi) {
                        for (std::size_t i = lo; i < hi; ++i) fn(i);
                      });
}

void ThreadPool::parallel_for_ranges(
    std::size_t begin, std::size_t end,
    const std::function<void(std::size_t, std::size_t, std::size_t)>& fn) {
  if (begin >= end) return;
  const std::size_t n = end - begin;
  const std::size_t num_chunks = std::min(n, max_parallel_chunks());
  if (num_chunks <= 1) {
    fn(0, begin, end);
    return;
  }
  const std::size_t chunk = (n + num_chunks - 1) / num_chunks;

  // Every chunk (pool or inline) must finish before this function
  // returns, even on failure: pool chunks capture `fn` by reference, so
  // unwinding past them while they still run would be a use-after-scope.
  // Exceptions are therefore trapped per chunk — keyed by chunk index so
  // the *first* failing chunk wins deterministically — and the winner is
  // rethrown on the calling thread once every future has been awaited.
  common::Mutex error_mutex;
  std::size_t error_chunk = std::numeric_limits<std::size_t>::max();
  std::exception_ptr error;
  std::atomic<bool> failed{false};
  const auto run_chunk = [&](std::size_t index, std::size_t lo,
                             std::size_t hi) {
    try {
      // Chunks not yet started are abandoned after a failure (best
      // effort); a running chunk finishes its range.
      if (failed.load(std::memory_order_relaxed)) return;
      fn(index, lo, hi);
    } catch (...) {
      failed.store(true, std::memory_order_relaxed);
      common::MutexLock lock(error_mutex);
      if (index < error_chunk) {
        error_chunk = index;
        error = std::current_exception();
      }
    }
  };

  std::vector<std::future<void>> pending;
  pending.reserve(num_chunks - 1);
  // Chunks after the first go to the pool; the first runs inline so the
  // calling thread is never idle.
  for (std::size_t c = 1; c < num_chunks; ++c) {
    const std::size_t lo = begin + c * chunk;
    const std::size_t hi = std::min(end, lo + chunk);
    if (lo >= hi) break;
    pending.push_back(
        submit([c, lo, hi, &run_chunk] { run_chunk(c, lo, hi); }));
  }
  const std::size_t first_hi = std::min(end, begin + chunk);
  run_chunk(0, begin, first_hi);
  for (auto& f : pending) f.get();
  if (error) std::rethrow_exception(error);
}

ThreadPool& ThreadPool::shared() {
  static ThreadPool pool;
  return pool;
}

}  // namespace dml
