// Open-addressing hash map for unsigned-integer keys on serving hot
// paths.  One flat slot array, linear probing, backward-shift deletion
// (no tombstones), power-of-two capacity: a lookup is one multiply-shift
// hash plus a short contiguous scan, instead of the pointer chase of
// std::unordered_map's separate chaining.  The predictor keys recent
// counts, scoped counts and active-warning deadlines with this; those
// maps are hit 4-6 times per served event.
//
// Not a general-purpose container: keys are values (no sentinel is
// reserved — occupancy is a per-slot flag), iteration order is
// unspecified, and pointers/references are invalidated by any insert.
#pragma once

#include <cstddef>
#include <cstdint>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/check.hpp"

namespace dml::common {

template <typename K, typename V>
class FlatMap {
  static_assert(std::is_unsigned_v<K>, "FlatMap keys are unsigned integers");

 public:
  FlatMap() = default;

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  void clear() {
    slots_.clear();
    mask_ = 0;
    size_ = 0;
  }

  bool contains(K key) const { return find(key) != nullptr; }

  const V* find(K key) const {
    if (slots_.empty()) return nullptr;
    // Probe termination: the load factor keeps at least one slot free,
    // so every probe chain ends at an unused slot.
    DML_DCHECK(size_ < slots_.size());
    std::size_t i = index_of(key);
    while (slots_[i].used) {
      if (slots_[i].key == key) return &slots_[i].value;
      i = (i + 1) & mask_;
    }
    return nullptr;
  }

  V* find(K key) {
    return const_cast<V*>(std::as_const(*this).find(key));
  }

  /// Inserts a default V when absent (like std::unordered_map::operator[]).
  V& operator[](K key) {
    if (slots_.empty() || (size_ + 1) * 4 > slots_.size() * 3) grow();
    // grow() re-established the <= 3/4 load factor, so insertion cannot
    // fill the table and the probe below terminates.
    DML_DCHECK((size_ + 1) * 4 <= slots_.size() * 3);
    std::size_t i = index_of(key);
    while (slots_[i].used) {
      if (slots_[i].key == key) return slots_[i].value;
      i = (i + 1) & mask_;
    }
    slots_[i].used = true;
    slots_[i].key = key;
    slots_[i].value = V{};
    ++size_;
    return slots_[i].value;
  }

  /// Removes `key` if present (returns whether it was).  Backward-shift:
  /// every displaced follower in the probe chain moves one slot closer
  /// to its ideal position, so lookups never traverse deleted slots.
  bool erase(K key) {
    if (slots_.empty()) return false;
    DML_DCHECK(size_ < slots_.size());
    std::size_t i = index_of(key);
    while (slots_[i].used && slots_[i].key != key) i = (i + 1) & mask_;
    if (!slots_[i].used) return false;
    DML_DCHECK(size_ > 0);
    std::size_t hole = i;
    std::size_t cur = (i + 1) & mask_;
    while (slots_[cur].used) {
      const std::size_t ideal = index_of(slots_[cur].key);
      // Movable iff its probe distance reaches back to the hole.
      if (((cur - ideal) & mask_) >= ((cur - hole) & mask_)) {
        slots_[hole].key = slots_[cur].key;
        slots_[hole].value = std::move(slots_[cur].value);
        hole = cur;
      }
      cur = (cur + 1) & mask_;
    }
    slots_[hole].used = false;
    --size_;
    return true;
  }

  /// Visits every (key, value) pair in unspecified order.
  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (const Slot& slot : slots_) {
      if (slot.used) fn(slot.key, slot.value);
    }
  }

 private:
  struct Slot {
    K key{};
    V value{};
    bool used = false;
  };

  std::size_t index_of(K key) const {
    // Fibonacci multiply-shift; the high bits carry the mix.
    std::uint64_t h = static_cast<std::uint64_t>(key);
    h *= 0x9e3779b97f4a7c15ULL;
    h ^= h >> 32;
    return static_cast<std::size_t>(h) & mask_;
  }

  void grow() {
    const std::size_t capacity = slots_.empty() ? 16 : slots_.size() * 2;
    // index_of masks with capacity - 1; anything but a power of two
    // would alias probe chains.
    DML_DCHECK((capacity & (capacity - 1)) == 0);
    std::vector<Slot> old = std::move(slots_);
    slots_.assign(capacity, Slot{});
    mask_ = capacity - 1;
    size_ = 0;
    for (Slot& slot : old) {
      if (slot.used) (*this)[slot.key] = std::move(slot.value);
    }
  }

  std::vector<Slot> slots_;
  std::size_t mask_ = 0;
  std::size_t size_ = 0;
};

}  // namespace dml::common
