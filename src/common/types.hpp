// Fundamental scalar types shared by every subsystem.
//
// All timestamps in the library are expressed as seconds since the start
// of the simulated epoch (TimeSec).  Blue Gene/L's CMCS logs events with
// sub-millisecond granularity but records timestamps at second resolution
// (see paper §2.1); one-second resolution is therefore faithful to the
// data the framework actually consumes.
#pragma once

#include <cstdint>
#include <limits>

namespace dml {

/// Seconds since the (simulated) epoch.
using TimeSec = std::int64_t;

/// A span of time, in seconds.
using DurationSec = std::int64_t;

/// Identifier of a job in the resource manager; 0 means "no job"
/// (system-originated events such as service-card checks).
using JobId = std::uint32_t;

inline constexpr JobId kNoJob = 0;

/// Monotonically increasing RAS record sequence number (Table 1, RECID).
using RecordId = std::uint64_t;

/// Index of a low-level event category in the taxonomy (0..218).
using CategoryId = std::uint16_t;

inline constexpr CategoryId kInvalidCategory =
    std::numeric_limits<CategoryId>::max();

inline constexpr DurationSec kSecondsPerMinute = 60;
inline constexpr DurationSec kSecondsPerHour = 3600;
inline constexpr DurationSec kSecondsPerDay = 86400;
inline constexpr DurationSec kSecondsPerWeek = 7 * kSecondsPerDay;

/// Four weeks, the paper's nominal "month" used for training-set sizing
/// (6 months == 26 weeks in the paper's plots; we follow weeks).
inline constexpr DurationSec kSecondsPerMonth = 4 * kSecondsPerWeek;

/// Which week (0-based) a timestamp falls into, relative to `origin`.
constexpr std::int64_t week_index(TimeSec t, TimeSec origin) {
  return (t - origin) / kSecondsPerWeek;
}

/// Which day (0-based) a timestamp falls into, relative to `origin`.
constexpr std::int64_t day_index(TimeSec t, TimeSec origin) {
  return (t - origin) / kSecondsPerDay;
}

}  // namespace dml
