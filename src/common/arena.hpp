// Bump (arena) allocator for retrain-build scratch (DESIGN.md §13): a
// rule-set build allocates thousands of short-lived buffers — candidate
// itemsets, tidset bitmaps, per-chunk count arrays — whose lifetimes all
// end when the build does.  An arena turns each of those into a pointer
// bump inside a geometrically-growing block chain, and the whole build's
// scratch is released wholesale (blocks are retained across reset() so a
// long-lived miner reuses them allocation-free).
//
// Not thread-safe: one arena per build, owned by the building thread.
// Deallocation is a no-op except for the trailing-allocation fast path,
// which lets a growing std::vector<T, ArenaAllocator<T>> reuse its old
// storage when nothing was bump-allocated after it.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <vector>

#include "common/check.hpp"

namespace dml::common {

class Arena {
 public:
  explicit Arena(std::size_t first_block_bytes = 1u << 16)
      : next_block_bytes_(std::max<std::size_t>(first_block_bytes, 64)) {}

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  void* allocate(std::size_t bytes, std::size_t align) {
    // Alignment must be a power of two (std allocator contract).
    DML_DCHECK(align != 0 && (align & (align - 1)) == 0);
    std::uintptr_t p = (cursor_ + (align - 1)) & ~(align - 1);
    if (p + bytes > limit_) {
      grow(bytes + align);
      p = (cursor_ + (align - 1)) & ~(align - 1);
    }
    cursor_ = p + bytes;
    return reinterpret_cast<void*>(p);
  }

  /// No-op unless `p` is the most recent allocation, in which case the
  /// cursor rewinds — the pattern a growing vector produces (allocate
  /// bigger, copy, free smaller is NOT rewindable; free-then-allocate
  /// at the same tail is).
  void deallocate(void* p, std::size_t bytes) {
    const auto addr = reinterpret_cast<std::uintptr_t>(p);
    if (addr + bytes == cursor_) cursor_ = addr;
  }

  /// Rewinds the arena to empty, keeping every block for reuse.  Only
  /// legal once all objects allocated from it are dead.
  void reset() {
    if (!blocks_.empty()) {
      cursor_ = reinterpret_cast<std::uintptr_t>(blocks_.front().get());
      limit_ = cursor_ + block_sizes_.front();
      active_block_ = 0;
    }
  }

  /// Total bytes owned (block chain), for tests and accounting.
  std::size_t capacity() const {
    std::size_t total = 0;
    for (const std::size_t size : block_sizes_) total += size;
    return total;
  }

 private:
  void grow(std::size_t min_bytes) {
    // Reuse the next retained block if it fits, else append a new one
    // at least twice the previous size.
    while (active_block_ + 1 < blocks_.size()) {
      ++active_block_;
      if (block_sizes_[active_block_] >= min_bytes) {
        cursor_ =
            reinterpret_cast<std::uintptr_t>(blocks_[active_block_].get());
        limit_ = cursor_ + block_sizes_[active_block_];
        return;
      }
    }
    std::size_t bytes = next_block_bytes_;
    while (bytes < min_bytes) bytes *= 2;
    next_block_bytes_ = bytes * 2;
    blocks_.push_back(std::unique_ptr<std::byte[]>(new std::byte[bytes]));
    block_sizes_.push_back(bytes);
    active_block_ = blocks_.size() - 1;
    cursor_ = reinterpret_cast<std::uintptr_t>(blocks_.back().get());
    limit_ = cursor_ + bytes;
  }

  std::vector<std::unique_ptr<std::byte[]>> blocks_;
  std::vector<std::size_t> block_sizes_;
  std::size_t active_block_ = 0;
  std::uintptr_t cursor_ = 0;
  std::uintptr_t limit_ = 0;
  std::size_t next_block_bytes_;
};

/// std-compatible allocator over an Arena, for the build-scratch
/// containers (the arena must outlive every container bound to it).
template <typename T>
class ArenaAllocator {
 public:
  using value_type = T;

  explicit ArenaAllocator(Arena& arena) : arena_(&arena) {}
  template <typename U>
  ArenaAllocator(const ArenaAllocator<U>& other) : arena_(other.arena()) {}

  T* allocate(std::size_t n) {
    return static_cast<T*>(arena_->allocate(n * sizeof(T), alignof(T)));
  }
  void deallocate(T* p, std::size_t n) {
    arena_->deallocate(p, n * sizeof(T));
  }

  Arena* arena() const { return arena_; }

  template <typename U>
  bool operator==(const ArenaAllocator<U>& other) const {
    return arena_ == other.arena();
  }

 private:
  Arena* arena_;
};

template <typename T>
using ArenaVector = std::vector<T, ArenaAllocator<T>>;

}  // namespace dml::common
