#include "common/string_util.hpp"

#include <cctype>

namespace dml {

std::vector<std::string_view> split(std::string_view text, char delim) {
  std::vector<std::string_view> out;
  std::size_t start = 0;
  while (true) {
    const std::size_t pos = text.find(delim, start);
    if (pos == std::string_view::npos) {
      out.push_back(text.substr(start));
      return out;
    }
    out.push_back(text.substr(start, pos - start));
    start = pos + 1;
  }
}

std::string_view trim(std::string_view text) {
  std::size_t begin = 0;
  std::size_t end = text.size();
  while (begin < end &&
         std::isspace(static_cast<unsigned char>(text[begin]))) {
    ++begin;
  }
  while (end > begin &&
         std::isspace(static_cast<unsigned char>(text[end - 1]))) {
    --end;
  }
  return text.substr(begin, end - begin);
}

std::string join(const std::vector<std::string>& parts,
                 std::string_view separator) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i != 0) out += separator;
    out += parts[i];
  }
  return out;
}

bool starts_with(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() &&
         text.substr(0, prefix.size()) == prefix;
}

std::string to_lower(std::string_view text) {
  std::string out(text);
  for (char& c : out) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return out;
}

std::string replace_all(std::string_view text, std::string_view from,
                        std::string_view to) {
  std::string out;
  if (from.empty()) return std::string(text);
  std::size_t start = 0;
  while (true) {
    const std::size_t pos = text.find(from, start);
    if (pos == std::string_view::npos) {
      out.append(text.substr(start));
      return out;
    }
    out.append(text.substr(start, pos - start));
    out.append(to);
    start = pos + from.size();
  }
}

}  // namespace dml
