#include "common/simd.hpp"

#include <atomic>
#include <cstdlib>
#include <cstring>

#include "common/check.hpp"

// The vector variants are x86-only and can be compiled out wholesale
// (cmake -DDMLFP_DISABLE_SIMD=ON, or any non-x86 target).
#if !defined(DMLFP_DISABLE_SIMD) && defined(__x86_64__) && \
    (defined(__GNUC__) || defined(__clang__))
#define DMLFP_SIMD_X86 1
#include <immintrin.h>
#else
#define DMLFP_SIMD_X86 0
#endif

namespace dml::simd {

std::string_view to_string(Variant variant) {
  switch (variant) {
    case Variant::kScalar: return "scalar";
    case Variant::kAvx2: return "avx2";
    case Variant::kAvx512: return "avx512";
  }
  return "unknown";
}

// ---- Scalar reference kernels ------------------------------------------

std::uint64_t DML_HOT and_popcount_scalar(const std::uint64_t* a,
                                  const std::uint64_t* b,
                                  std::size_t words) {
  std::uint64_t total = 0;
  for (std::size_t w = 0; w < words; ++w) {
    total += static_cast<std::uint64_t>(std::popcount(a[w] & b[w]));
  }
  return total;
}

std::uint32_t DML_HOT subset_count_scalar(const std::uint64_t* rows,
                                  std::size_t n_rows, std::size_t stride,
                                  const std::uint64_t* mask,
                                  std::size_t words) {
  std::uint32_t count = 0;
  const std::uint64_t* row = rows;
  for (std::size_t r = 0; r < n_rows; ++r, row += stride) {
    bool all = true;
    for (std::size_t w = 0; w < words; ++w) {
      if ((row[w] & mask[w]) != mask[w]) {
        all = false;
        break;
      }
    }
    count += all ? 1u : 0u;
  }
  return count;
}

#if DMLFP_SIMD_X86

// ---- AVX2 kernels ------------------------------------------------------
// 256-bit AND + the pshufb nibble-LUT popcount (Mula); every
// AVX2-capable part also has the scalar POPCNT used for tails.

__attribute__((target("avx2,popcnt"))) static std::uint64_t DML_HOT
and_popcount_avx2(const std::uint64_t* a, const std::uint64_t* b,
                  std::size_t words) {
  const __m256i lut = _mm256_setr_epi8(
      0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4,
      0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4);
  const __m256i low_mask = _mm256_set1_epi8(0x0f);
  __m256i acc = _mm256_setzero_si256();
  std::size_t w = 0;
  for (; w + 4 <= words; w += 4) {
    const __m256i v = _mm256_and_si256(
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + w)),
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + w)));
    const __m256i lo = _mm256_and_si256(v, low_mask);
    const __m256i hi = _mm256_and_si256(_mm256_srli_epi16(v, 4), low_mask);
    const __m256i nib = _mm256_add_epi8(_mm256_shuffle_epi8(lut, lo),
                                        _mm256_shuffle_epi8(lut, hi));
    acc = _mm256_add_epi64(acc, _mm256_sad_epu8(nib, _mm256_setzero_si256()));
  }
  std::uint64_t total =
      static_cast<std::uint64_t>(_mm256_extract_epi64(acc, 0)) +
      static_cast<std::uint64_t>(_mm256_extract_epi64(acc, 1)) +
      static_cast<std::uint64_t>(_mm256_extract_epi64(acc, 2)) +
      static_cast<std::uint64_t>(_mm256_extract_epi64(acc, 3));
  for (; w < words; ++w) {
    total += static_cast<std::uint64_t>(__builtin_popcountll(a[w] & b[w]));
  }
  return total;
}

__attribute__((target("avx2,popcnt"))) static std::uint32_t DML_HOT
subset_count_avx2(const std::uint64_t* rows, std::size_t n_rows,
                  std::size_t stride, const std::uint64_t* mask,
                  std::size_t words) {
  std::uint32_t count = 0;
  std::size_t r = 0;
  if (words == 1 && stride == 1) {
    // Four rows per 256-bit lane; a row passes iff (row & m) == m.
    const __m256i m = _mm256_set1_epi64x(static_cast<long long>(mask[0]));
    for (; r + 4 <= n_rows; r += 4) {
      const __m256i v =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(rows + r));
      const __m256i eq = _mm256_cmpeq_epi64(_mm256_and_si256(v, m), m);
      count += static_cast<std::uint32_t>(__builtin_popcount(
          static_cast<unsigned>(_mm256_movemask_pd(_mm256_castsi256_pd(eq)))));
    }
  } else if (words == 2 && stride == 2) {
    // Two rows per lane; both 64-bit halves of a row must pass.
    const __m256i m = _mm256_setr_epi64x(
        static_cast<long long>(mask[0]), static_cast<long long>(mask[1]),
        static_cast<long long>(mask[0]), static_cast<long long>(mask[1]));
    for (; r + 2 <= n_rows; r += 2) {
      const __m256i v = _mm256_loadu_si256(
          reinterpret_cast<const __m256i*>(rows + r * 2));
      const __m256i eq = _mm256_cmpeq_epi64(_mm256_and_si256(v, m), m);
      const unsigned k = static_cast<unsigned>(
          _mm256_movemask_pd(_mm256_castsi256_pd(eq)));
      count += (k & (k >> 1)) & 1u;
      count += (k >> 2) & (k >> 3) & 1u;
    }
  } else if (words == 4 && stride == 4) {
    // One row per lane; all four words must pass.
    const __m256i m =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(mask));
    for (; r < n_rows; ++r) {
      const __m256i v = _mm256_loadu_si256(
          reinterpret_cast<const __m256i*>(rows + r * 4));
      const __m256i eq = _mm256_cmpeq_epi64(_mm256_and_si256(v, m), m);
      count += _mm256_movemask_pd(_mm256_castsi256_pd(eq)) == 0xf ? 1u : 0u;
    }
  }
  if (r < n_rows) {
    count += subset_count_scalar(rows + r * stride, n_rows - r, stride, mask,
                                 words);
  }
  return count;
}

// ---- AVX-512 kernels ---------------------------------------------------
// 512-bit AND + VPOPCNTDQ for intersections; lane-mask subset tests
// packing 8/4/2 rows per register for the narrow transaction rows.

__attribute__((target("avx512f,avx512vpopcntdq,popcnt"))) static std::uint64_t
    DML_HOT and_popcount_avx512(const std::uint64_t* a, const std::uint64_t* b,
                    std::size_t words) {
  __m512i acc = _mm512_setzero_si512();
  std::size_t w = 0;
  for (; w + 8 <= words; w += 8) {
    const __m512i v = _mm512_and_si512(_mm512_loadu_si512(a + w),
                                       _mm512_loadu_si512(b + w));
    acc = _mm512_add_epi64(acc, _mm512_popcnt_epi64(v));
  }
  // Manual lane sum: _mm512_reduce_add_epi64 trips a gcc 12
  // -Wuninitialized false positive via _mm256_undefined_si256.
  alignas(64) std::uint64_t lanes[8];
  _mm512_store_si512(lanes, acc);
  std::uint64_t total = 0;
  for (const std::uint64_t lane : lanes) total += lane;
  for (; w < words; ++w) {
    total += static_cast<std::uint64_t>(__builtin_popcountll(a[w] & b[w]));
  }
  return total;
}

__attribute__((target("avx512f,popcnt"))) static std::uint32_t DML_HOT
subset_count_avx512(const std::uint64_t* rows, std::size_t n_rows,
                    std::size_t stride, const std::uint64_t* mask,
                    std::size_t words) {
  std::uint32_t count = 0;
  std::size_t r = 0;
  if (words == 1 && stride == 1) {
    const __m512i m = _mm512_set1_epi64(static_cast<long long>(mask[0]));
    for (; r + 8 <= n_rows; r += 8) {
      const __m512i v = _mm512_loadu_si512(rows + r);
      const __mmask8 k =
          _mm512_cmpeq_epi64_mask(_mm512_and_si512(v, m), m);
      count += static_cast<std::uint32_t>(
          __builtin_popcount(static_cast<unsigned>(k)));
    }
  } else if (words == 2 && stride == 2) {
    // Four rows per register; adjacent lane pairs must both pass.
    // (set4 instead of broadcast_i32x4: the broadcast intrinsic trips
    // the same gcc 12 undefined-vector -Wuninitialized false positive
    // as reduce_add.)
    const __m512i m = _mm512_set4_epi64(
        static_cast<long long>(mask[1]), static_cast<long long>(mask[0]),
        static_cast<long long>(mask[1]), static_cast<long long>(mask[0]));
    for (; r + 4 <= n_rows; r += 4) {
      const __m512i v = _mm512_loadu_si512(rows + r * 2);
      const unsigned k = static_cast<unsigned>(
          _mm512_cmpeq_epi64_mask(_mm512_and_si512(v, m), m));
      count += static_cast<std::uint32_t>(
          __builtin_popcount(k & (k >> 1) & 0x55u));
    }
  } else if (words == 4 && stride == 4) {
    // Two rows per register; each 4-lane group must fully pass.
    const __m512i m = _mm512_set4_epi64(
        static_cast<long long>(mask[3]), static_cast<long long>(mask[2]),
        static_cast<long long>(mask[1]), static_cast<long long>(mask[0]));
    for (; r + 2 <= n_rows; r += 2) {
      const __m512i v = _mm512_loadu_si512(rows + r * 4);
      const unsigned k = static_cast<unsigned>(
          _mm512_cmpeq_epi64_mask(_mm512_and_si512(v, m), m));
      count += static_cast<std::uint32_t>(
          __builtin_popcount(k & (k >> 1) & (k >> 2) & (k >> 3) & 0x11u));
    }
  }
  if (r < n_rows) {
    count += subset_count_scalar(rows + r * stride, n_rows - r, stride, mask,
                                 words);
  }
  return count;
}

#endif  // DMLFP_SIMD_X86

namespace {

const Kernels kScalarKernels{Variant::kScalar, &and_popcount_scalar,
                             &subset_count_scalar};
#if DMLFP_SIMD_X86
const Kernels kAvx2Kernels{Variant::kAvx2, &and_popcount_avx2,
                           &subset_count_avx2};
const Kernels kAvx512Kernels{Variant::kAvx512, &and_popcount_avx512,
                             &subset_count_avx512};
#endif

bool cpu_supports(Variant variant) {
  switch (variant) {
    case Variant::kScalar:
      return true;
#if DMLFP_SIMD_X86
    case Variant::kAvx2:
      return __builtin_cpu_supports("avx2") != 0 &&
             __builtin_cpu_supports("popcnt") != 0;
    case Variant::kAvx512:
      return __builtin_cpu_supports("avx512f") != 0 &&
             __builtin_cpu_supports("avx512vpopcntdq") != 0 &&
             __builtin_cpu_supports("popcnt") != 0;
#else
    default:
      return false;
#endif
  }
  return false;
}

/// DMLFP_SIMD=scalar|avx2|avx512 pins dispatch; DMLFP_DISABLE_SIMD=1 is
/// an alias for scalar (mirrors the cmake option).  Unknown or
/// unsupported requests fall back to auto detection — a portable build
/// must not fail because a CI lane exported the knob.
std::atomic<const Kernels*> g_active{nullptr};

Variant detect_best() {
  // Read once, before any worker thread touches the kernels.
  const char* disable =
      std::getenv("DMLFP_DISABLE_SIMD");  // NOLINT(concurrency-mt-unsafe)
  if (disable != nullptr && disable[0] != '\0' &&
      std::strcmp(disable, "0") != 0) {
    return Variant::kScalar;
  }
  const char* env = std::getenv("DMLFP_SIMD");  // NOLINT(concurrency-mt-unsafe)
  if (env != nullptr) {
    if (std::strcmp(env, "scalar") == 0) return Variant::kScalar;
    if (std::strcmp(env, "avx2") == 0 && cpu_supports(Variant::kAvx2)) {
      return Variant::kAvx2;
    }
    if (std::strcmp(env, "avx512") == 0 && cpu_supports(Variant::kAvx512)) {
      return Variant::kAvx512;
    }
  }
  if (cpu_supports(Variant::kAvx512)) return Variant::kAvx512;
  if (cpu_supports(Variant::kAvx2)) return Variant::kAvx2;
  return Variant::kScalar;
}

}  // namespace

bool supported(Variant variant) { return cpu_supports(variant); }

Variant best_variant() {
  static const Variant best = detect_best();
  return best;
}

const Kernels& kernels(Variant variant) {
  DML_CHECK_MSG(supported(variant), "SIMD variant not supported here");
  switch (variant) {
    case Variant::kScalar:
      return kScalarKernels;
#if DMLFP_SIMD_X86
    case Variant::kAvx2:
      return kAvx2Kernels;
    case Variant::kAvx512:
      return kAvx512Kernels;
#else
    default:
      return kScalarKernels;
#endif
  }
  return kScalarKernels;
}

const Kernels& active() {
  const Kernels* table = g_active.load(std::memory_order_acquire);
  if (table == nullptr) {
    // First use (benign if two threads race: both resolve identically).
    table = &kernels(best_variant());
    g_active.store(table, std::memory_order_release);
  }
  return *table;
}

void force_variant(Variant variant) {
  g_active.store(&kernels(variant), std::memory_order_release);
}

}  // namespace dml::simd
