// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) — the integrity
// check stamped on every on-disk record and index block.  Table-driven
// software implementation; byte-order independent, so checksums written
// on one host verify on any other.
#pragma once

#include <cstddef>
#include <cstdint>

namespace dml::common {

/// Incremental update: feed `crc32(data, len, prev)` the previous return
/// value to checksum a discontiguous buffer.  Seed with the default to
/// checksum a single span.
std::uint32_t crc32(const void* data, std::size_t size,
                    std::uint32_t crc = 0);

}  // namespace dml::common
