// Fixed-size worker pool with a blocking task queue and a parallel_for
// helper.  The paper notes (Table 5, Observation #8) that rule generation
// "can be conducted in parallel while the production system is in
// operation"; the meta-learner uses this pool to mine the three base
// learners and to chunk Apriori support counting across workers.
#pragma once

#include <cstddef>
#include <functional>
#include <future>
#include <queue>
#include <thread>
#include <vector>

#include "common/annotations.hpp"

namespace dml {

class ThreadPool {
 public:
  /// `num_threads == 0` selects hardware_concurrency() (at least 1).
  explicit ThreadPool(std::size_t num_threads = 0);

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  ~ThreadPool();

  std::size_t size() const { return workers_.size(); }

  /// Enqueues a task; the future resolves when it completes.  Tasks must
  /// not themselves block on other tasks submitted to the same pool.
  template <typename F>
  std::future<std::invoke_result_t<F>> submit(F&& fn) DML_EXCLUDES(mutex_) {
    using R = std::invoke_result_t<F>;
    auto task =
        std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    std::future<R> result = task->get_future();
    {
      common::MutexLock lock(mutex_);
      queue_.emplace([task]() mutable { (*task)(); });
    }
    cv_.notify_one();
    return result;
  }

  /// Runs fn(i) for i in [begin, end), partitioned into contiguous chunks
  /// across the pool (the calling thread also works).  Blocks until all
  /// iterations complete.  fn must be safe to invoke concurrently.
  /// If fn throws, remaining iterations are abandoned (best effort), every
  /// chunk is still joined, and the exception of the lowest-indexed
  /// failing chunk is rethrown on the calling thread.
  void parallel_for(std::size_t begin, std::size_t end,
                    const std::function<void(std::size_t)>& fn);

  /// Upper bound on the chunk count parallel_for_ranges will use from
  /// the calling context: pool size + 1 (the caller works too), or 1
  /// when called from a pool worker (nested calls degrade to serial).
  /// Size per-chunk accumulation buffers with this.
  std::size_t max_parallel_chunks() const;

  /// Range form of parallel_for: partitions [begin, end) into at most
  /// max_parallel_chunks() contiguous ranges and runs
  /// fn(chunk_index, lo, hi) once per range — one task dispatch per
  /// chunk rather than per index, so fine-grained loops (Apriori
  /// support counting) can keep per-chunk state without paying a
  /// std::function call per element.  chunk_index values are dense in
  /// [0, max_parallel_chunks()).  Exception propagation and nested-call
  /// behaviour match parallel_for: every chunk is joined before
  /// returning and the lowest-indexed failing chunk's exception is
  /// rethrown.
  void parallel_for_ranges(
      std::size_t begin, std::size_t end,
      const std::function<void(std::size_t, std::size_t, std::size_t)>& fn);

  /// Shared process-wide pool sized to the machine.
  static ThreadPool& shared();

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  common::Mutex mutex_;
  common::CondVar cv_;
  std::queue<std::function<void()>> queue_ DML_GUARDED_BY(mutex_);
  bool stopping_ DML_GUARDED_BY(mutex_) = false;
};

}  // namespace dml
