// Growable power-of-two ring buffer with std::deque's FIFO interface
// subset.  The predictor's recent-event window pushes ~16-byte PODs at
// serving rate; libstdc++'s deque allocates a fresh 512-byte node every
// ~32 pushes, which is the dominant cost of an otherwise allocation-free
// hot path.  A ring reuses one contiguous buffer: push/pop are an index
// bump and a store, and growth (amortized, rare once the window reaches
// steady state) relinearizes into a doubled buffer.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/check.hpp"

namespace dml::common {

template <typename T>
class RingQueue {
 public:
  bool empty() const { return head_ == tail_; }
  std::size_t size() const { return static_cast<std::size_t>(tail_ - head_); }

  const T& front() const {
    DML_DCHECK(!empty());
    return data_[head_ & mask_];
  }

  /// FIFO order, index 0 = front.  For tests and draining scans.
  const T& operator[](std::size_t i) const {
    DML_DCHECK(i < size());
    return data_[(head_ + i) & mask_];
  }

  void push_back(const T& value) {
    if (size() == data_.size()) grow();
    data_[tail_++ & mask_] = value;
  }

  template <typename... Args>
  void emplace_back(Args&&... args) {
    push_back(T{std::forward<Args>(args)...});
  }

  void pop_front() {
    DML_DCHECK(!empty());
    ++head_;
  }

  void clear() { head_ = tail_ = 0; }

 private:
  void grow() {
    const std::size_t old_size = size();
    std::vector<T> bigger(data_.empty() ? kInitialCapacity
                                        : data_.size() * 2);
    for (std::size_t i = 0; i < old_size; ++i) {
      bigger[i] = data_[(head_ + i) & mask_];
    }
    data_ = std::move(bigger);
    mask_ = data_.size() - 1;
    head_ = 0;
    tail_ = old_size;
  }

  static constexpr std::size_t kInitialCapacity = 16;

  std::vector<T> data_;
  std::size_t mask_ = 0;
  // Monotonic positions; masked on access.  64-bit, so wraparound is
  // not reachable in practice.
  std::uint64_t head_ = 0;
  std::uint64_t tail_ = 0;
};

}  // namespace dml::common
