#include "logio/record_sink.hpp"

#include "logio/text_format.hpp"

namespace dml::logio {

void CountingSink::consume(const bgl::RasRecord& record) {
  ++total_;
  bytes_ += serialized_size(record);
  ++per_facility_[static_cast<std::size_t>(record.facility)];
}

StreamSink::StreamSink(std::ostream& out, std::string_view machine)
    : out_(out) {
  out_ << "# BGL-RAS-LOG v1 machine=" << machine << '\n';
}

void StreamSink::consume(const bgl::RasRecord& record) {
  out_ << record_to_line(record) << '\n';
}

}  // namespace dml::logio
