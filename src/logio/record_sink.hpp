// Sink interfaces for streaming raw-record pipelines.  The generator
// produces records in time order; sinks consume them without the caller
// ever materialising multi-gigabyte logs in memory.
#pragma once

#include <array>
#include <cstdint>
#include <ostream>
#include <vector>

#include "bgl/record.hpp"

namespace dml::logio {

/// Consumer of a raw record stream (records arrive in non-decreasing
/// event_time order with sequential record ids).
class RecordSink {
 public:
  virtual ~RecordSink() = default;
  virtual void consume(const bgl::RasRecord& record) = 0;
};

/// Collects everything (tests; small logs only).
class VectorSink final : public RecordSink {
 public:
  void consume(const bgl::RasRecord& record) override {
    records_.push_back(record);
  }
  const std::vector<bgl::RasRecord>& records() const { return records_; }
  std::vector<bgl::RasRecord> take() { return std::move(records_); }

 private:
  std::vector<bgl::RasRecord> records_;
};

/// Counts records and serialized bytes per facility (Table 2 and the
/// raw column of Table 4).
class CountingSink final : public RecordSink {
 public:
  void consume(const bgl::RasRecord& record) override;

  std::uint64_t total() const { return total_; }
  std::uint64_t bytes() const { return bytes_; }
  std::uint64_t per_facility(bgl::Facility f) const {
    return per_facility_[static_cast<std::size_t>(f)];
  }

 private:
  std::uint64_t total_ = 0;
  std::uint64_t bytes_ = 0;
  std::array<std::uint64_t, bgl::kNumFacilities> per_facility_{};
};

/// Serializes records to a text-format stream (header written up front).
class StreamSink final : public RecordSink {
 public:
  StreamSink(std::ostream& out, std::string_view machine);
  void consume(const bgl::RasRecord& record) override;

 private:
  std::ostream& out_;
};

/// Fans one stream out to several sinks.
class TeeSink final : public RecordSink {
 public:
  explicit TeeSink(std::vector<RecordSink*> sinks) : sinks_(std::move(sinks)) {}
  void consume(const bgl::RasRecord& record) override {
    for (RecordSink* sink : sinks_) sink->consume(record);
  }

 private:
  std::vector<RecordSink*> sinks_;
};

}  // namespace dml::logio
