// Plain-text serialization of RAS logs.
//
// The production systems archive events in a DB2 repository (paper §2.1);
// downstream analysis consumes flat per-record extracts.  We use a
// pipe-delimited line format mirroring Table 1's attribute order:
//
//   RECID|EVENT_TYPE|TIMESTAMP|JOBID|LOCATION|FACILITY|SEVERITY|ENTRY_DATA
//
// with a single header line `# BGL-RAS-LOG v1 machine=<name>`.
// ENTRY_DATA is the final field and is taken verbatim to end-of-line.
#pragma once

#include <istream>
#include <optional>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

#include "bgl/record.hpp"

namespace dml::logio {

std::string record_to_line(const bgl::RasRecord& record);

/// Parses one data line; nullopt on malformed input.
std::optional<bgl::RasRecord> parse_line(std::string_view line);

struct LogFile {
  std::string machine;
  std::vector<bgl::RasRecord> records;
};

void write_log(std::ostream& out, std::string_view machine,
               const std::vector<bgl::RasRecord>& records);

/// Reads a full log; throws std::runtime_error on a malformed header or
/// record line (with the line number).
LogFile read_log(std::istream& in);

/// Incremental reader for streaming consumption (online prediction).
class RecordReader {
 public:
  explicit RecordReader(std::istream& in);

  const std::string& machine() const { return machine_; }

  /// Next record, or nullopt at end of stream.  Throws on malformed
  /// lines.  Blank lines and '#' comment lines are skipped.
  std::optional<bgl::RasRecord> next();

  std::size_t line_number() const { return line_number_; }

 private:
  std::istream& in_;
  std::string machine_;
  std::size_t line_number_ = 0;
};

/// Approximate serialized size in bytes of a record (for Table 2's
/// log-size column) without materialising the string.
std::size_t serialized_size(const bgl::RasRecord& record);

}  // namespace dml::logio
