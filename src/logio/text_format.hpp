// Plain-text serialization of RAS logs.
//
// The production systems archive events in a DB2 repository (paper §2.1);
// downstream analysis consumes flat per-record extracts.  We use a
// pipe-delimited line format mirroring Table 1's attribute order:
//
//   RECID|EVENT_TYPE|TIMESTAMP|JOBID|LOCATION|FACILITY|SEVERITY|ENTRY_DATA
//
// with a single header line `# BGL-RAS-LOG v1 machine=<name>`.
// ENTRY_DATA is the final field and is taken verbatim to end-of-line.
#pragma once

#include <istream>
#include <optional>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

#include "bgl/record.hpp"

namespace dml::logio {

std::string record_to_line(const bgl::RasRecord& record);

/// Parses one data line; nullopt on malformed input.  When `reason` is
/// non-null, a rejection fills it with which field was bad (line numbers
/// are the reader's job).
std::optional<bgl::RasRecord> parse_line(std::string_view line,
                                         std::string* reason = nullptr);

/// One skipped/rejected input line.
struct ParseDiagnostic {
  std::size_t line = 0;
  std::string reason;
};

/// Loader bookkeeping: how much of a log stream actually parsed.  The
/// diagnostics list keeps only the first kMaxDiagnostics entries so a
/// wholly corrupt file cannot balloon memory.
struct ReadStats {
  static constexpr std::size_t kMaxDiagnostics = 16;

  /// Data lines seen (blank lines and '#' comments excluded).
  std::uint64_t lines = 0;
  std::uint64_t parsed = 0;
  /// Malformed (or fault-injected) lines skipped — nonzero only in
  /// OnError::kSkip mode, where they are counted instead of thrown.
  std::uint64_t skipped = 0;
  std::vector<ParseDiagnostic> diagnostics;

  void note_skip(std::size_t line, std::string reason) {
    ++skipped;
    if (diagnostics.size() < kMaxDiagnostics) {
      diagnostics.push_back({line, std::move(reason)});
    }
  }
};

struct LogFile {
  std::string machine;
  std::vector<bgl::RasRecord> records;
};

void write_log(std::ostream& out, std::string_view machine,
               const std::vector<bgl::RasRecord>& records);

/// Reads a full log; throws std::runtime_error on a malformed header or
/// record line (with the line number).
LogFile read_log(std::istream& in);

/// Incremental reader for streaming consumption (online prediction).
class RecordReader {
 public:
  /// Malformed-line policy: kThrow (default) raises std::runtime_error
  /// with the line number and reason; kSkip counts the line in
  /// read_stats() and moves on — the graceful-degradation mode for
  /// production log pipelines that must survive corrupt records.
  enum class OnError { kThrow, kSkip };

  explicit RecordReader(std::istream& in, OnError on_error = OnError::kThrow);

  const std::string& machine() const { return machine_; }

  /// Next record, or nullopt at end of stream.  Blank lines and '#'
  /// comment lines are skipped; malformed lines follow the OnError
  /// policy.
  std::optional<bgl::RasRecord> next();

  std::size_t line_number() const { return line_number_; }
  const ReadStats& read_stats() const { return stats_; }

 private:
  std::istream& in_;
  OnError on_error_;
  std::string machine_;
  std::size_t line_number_ = 0;
  ReadStats stats_;
};

/// Approximate serialized size in bytes of a record (for Table 2's
/// log-size column) without materialising the string.
std::size_t serialized_size(const bgl::RasRecord& record);

}  // namespace dml::logio
