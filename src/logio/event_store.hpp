// In-memory, time-ordered store of categorized events — the substrate the
// learners, predictor, and online driver query.  Events are immutable
// once loaded; all queries are binary searches over the time axis.
#pragma once

#include <span>
#include <vector>

#include "bgl/record.hpp"
#include "logio/text_format.hpp"

namespace dml::logio {

class EventStore {
 public:
  EventStore() = default;

  /// Takes ownership of events; sorts them into canonical time order.
  explicit EventStore(std::vector<bgl::Event> events);

  std::size_t size() const { return events_.size(); }
  bool empty() const { return events_.empty(); }

  std::span<const bgl::Event> all() const { return events_; }

  /// Events with time in [begin, end), as a contiguous view.
  std::span<const bgl::Event> between(TimeSec begin, TimeSec end) const;

  /// Timestamp bounds; both 0 when empty.
  TimeSec first_time() const;
  TimeSec last_time() const;

  /// Timestamps of fatal events (cached, ascending).
  const std::vector<TimeSec>& fatal_times() const { return fatal_times_; }

  /// Number of fatal events in [begin, end).
  std::size_t fatal_count_between(TimeSec begin, TimeSec end) const;

  /// Loader bookkeeping carried with the store: when the events came
  /// from a lenient log read, how many input lines parsed vs. were
  /// skipped as malformed (and why).  Default-empty for stores built
  /// from in-memory events.
  void set_load_stats(ReadStats stats) { load_stats_ = std::move(stats); }
  const ReadStats& load_stats() const { return load_stats_; }

  /// Fatal events per day relative to `origin` covering [origin, end_time)
  /// — the Figure 4 series.
  std::vector<std::size_t> fatal_per_day(TimeSec origin,
                                         TimeSec end_time) const;

 private:
  std::vector<bgl::Event> events_;
  std::vector<TimeSec> fatal_times_;
  ReadStats load_stats_;
};

}  // namespace dml::logio
