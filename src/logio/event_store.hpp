// In-memory, time-ordered store of categorized events — the substrate the
// learners, predictor, and online driver query.  Events are immutable
// once loaded; all queries are binary searches over the time axis.
//
// EventStore is the in-memory implementation of storage::EventRepository;
// the same pipelines run off storage::OnDiskRepository unchanged.  The
// canonical order (stable sort under bgl::EventTimeOrder) is shared with
// storage::CanonicalAppender, which is what makes the in-memory and
// on-disk serving paths produce byte-identical warning streams.
#pragma once

#include <memory>
#include <span>
#include <vector>

#include "bgl/record.hpp"
#include "logio/text_format.hpp"
#include "storage/event_repository.hpp"

namespace dml::logio {

class EventStore : public storage::EventRepository {
 public:
  EventStore() = default;

  /// Takes ownership of events; stable-sorts them into canonical order.
  explicit EventStore(std::vector<bgl::Event> events);

  std::size_t size() const override { return events_.size(); }

  std::span<const bgl::Event> all() const { return events_; }

  /// Events with time in [begin, end), as a contiguous view.
  std::span<const bgl::Event> between(TimeSec begin, TimeSec end) const;

  /// Timestamp bounds; both 0 when empty.
  TimeSec first_time() const override;
  TimeSec last_time() const override;

  /// Cursor over between(begin, end) — the EventRepository view of the
  /// same data.  The store must outlive the cursor.
  std::unique_ptr<storage::EventCursor> scan(TimeSec begin, TimeSec end)
      const override;

  /// Timestamps of fatal events (cached, ascending).
  const std::vector<TimeSec>& fatal_times() const { return fatal_times_; }

  /// Number of fatal events in [begin, end).
  std::size_t fatal_count_between(TimeSec begin, TimeSec end) const override;

  /// Loader bookkeeping carried with the store: when the events came
  /// from a lenient log read, how many input lines parsed vs. were
  /// skipped as malformed (and why).  Default-empty for stores built
  /// from in-memory events.
  void set_load_stats(ReadStats stats) { load_stats_ = std::move(stats); }
  const ReadStats& load_stats() const { return load_stats_; }

  /// Fatal events per day relative to `origin` covering [origin, end_time)
  /// — the Figure 4 series.
  std::vector<std::size_t> fatal_per_day(TimeSec origin,
                                         TimeSec end_time) const;

 private:
  std::vector<bgl::Event> events_;
  std::vector<TimeSec> fatal_times_;
  ReadStats load_stats_;
};

}  // namespace dml::logio
