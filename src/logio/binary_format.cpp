#include "logio/binary_format.hpp"

#include <cstring>
#include <stdexcept>

#include "common/crc32.hpp"
#include "common/failpoint.hpp"

namespace dml::logio {
namespace {

/// Fixed bytes of one frame before ENTRY_DATA.
constexpr std::size_t kFramePrefix = 32;
constexpr std::size_t kHeaderFixed = 16;  // magic + version + machine_len

void put_u32(unsigned char* out, std::uint32_t v) {
  out[0] = static_cast<unsigned char>(v);
  out[1] = static_cast<unsigned char>(v >> 8);
  out[2] = static_cast<unsigned char>(v >> 16);
  out[3] = static_cast<unsigned char>(v >> 24);
}

void put_u64(unsigned char* out, std::uint64_t v) {
  put_u32(out, static_cast<std::uint32_t>(v));
  put_u32(out + 4, static_cast<std::uint32_t>(v >> 32));
}

std::uint32_t get_u32(const unsigned char* in) {
  return static_cast<std::uint32_t>(in[0]) |
         static_cast<std::uint32_t>(in[1]) << 8 |
         static_cast<std::uint32_t>(in[2]) << 16 |
         static_cast<std::uint32_t>(in[3]) << 24;
}

std::uint64_t get_u64(const unsigned char* in) {
  return static_cast<std::uint64_t>(get_u32(in)) |
         static_cast<std::uint64_t>(get_u32(in + 4)) << 32;
}

void encode_prefix(const bgl::RasRecord& record,
                   unsigned char out[kFramePrefix]) {
  put_u64(out, record.record_id);
  put_u64(out + 8, static_cast<std::uint64_t>(record.event_time));
  put_u32(out + 16, record.job_id);
  put_u32(out + 20, record.location.packed());
  out[24] = static_cast<unsigned char>(record.event_type);
  out[25] = static_cast<unsigned char>(record.facility);
  out[26] = static_cast<unsigned char>(record.severity);
  out[27] = 0;
  put_u32(out + 28, static_cast<std::uint32_t>(record.entry_data.size()));
}

}  // namespace

std::size_t binary_serialized_size(const bgl::RasRecord& record) {
  return kFramePrefix + record.entry_data.size() + 4;
}

void append_record_frame(std::vector<unsigned char>& out,
                         const bgl::RasRecord& record) {
  unsigned char prefix[kFramePrefix];
  encode_prefix(record, prefix);
  std::uint32_t crc = common::crc32(prefix, kFramePrefix);
  crc = common::crc32(record.entry_data.data(), record.entry_data.size(), crc);
  unsigned char trailer[4];
  put_u32(trailer, crc);
  out.insert(out.end(), prefix, prefix + kFramePrefix);
  out.insert(out.end(), record.entry_data.begin(), record.entry_data.end());
  out.insert(out.end(), trailer, trailer + 4);
}

RecordFrameStatus decode_record_frame(const unsigned char* data,
                                      std::size_t size, bgl::RasRecord* out,
                                      std::size_t* consumed,
                                      std::string* reason) {
  const auto bad = [&](const char* why) {
    if (reason != nullptr) *reason = why;
    *consumed = 0;
    return RecordFrameStatus::kBad;
  };
  *consumed = 0;
  if (size < kFramePrefix) return RecordFrameStatus::kNeedMore;
  const std::uint32_t entry_len = get_u32(data + 28);
  if (entry_len > kMaxEntryData) return bad("entry length exceeds limit");
  const std::size_t frame = kFramePrefix + entry_len + 4;
  if (size < frame) return RecordFrameStatus::kNeedMore;

  std::uint32_t crc = common::crc32(data, kFramePrefix + entry_len);
  if (crc != get_u32(data + kFramePrefix + entry_len)) {
    return bad("record CRC mismatch");
  }
  if (data[24] > 2) return bad("bad event type");
  if (data[25] >= bgl::kNumFacilities) return bad("bad facility");
  if (data[26] >= kNumSeverities) return bad("bad severity");

  out->record_id = get_u64(data);
  out->event_time = static_cast<TimeSec>(get_u64(data + 8));
  out->job_id = get_u32(data + 16);
  out->location = bgl::Location::from_packed(get_u32(data + 20));
  out->event_type = static_cast<bgl::EventType>(data[24]);
  out->facility = static_cast<bgl::Facility>(data[25]);
  out->severity = static_cast<Severity>(data[26]);
  out->entry_data.assign(reinterpret_cast<const char*>(data) + kFramePrefix,
                         entry_len);
  *consumed = frame;
  return RecordFrameStatus::kOk;
}

BinaryStreamSink::BinaryStreamSink(std::ostream& out, std::string_view machine)
    : out_(out) {
  unsigned char header[kHeaderFixed];
  std::memcpy(header, kBinaryLogMagic, 8);
  put_u32(header + 8, kBinaryLogVersion);
  put_u32(header + 12, static_cast<std::uint32_t>(machine.size()));
  out_.write(reinterpret_cast<const char*>(header), kHeaderFixed);
  out_.write(machine.data(), static_cast<std::streamsize>(machine.size()));
  bytes_written_ = kHeaderFixed + machine.size();
}

void BinaryStreamSink::consume(const bgl::RasRecord& record) {
  scratch_.clear();
  append_record_frame(scratch_, record);
  out_.write(reinterpret_cast<const char*>(scratch_.data()),
             static_cast<std::streamsize>(scratch_.size()));
  ++records_written_;
  bytes_written_ += scratch_.size();
}

void write_binary_log(std::ostream& out, std::string_view machine,
                      const std::vector<bgl::RasRecord>& records) {
  BinaryStreamSink sink(out, machine);
  for (const auto& record : records) sink.consume(record);
  out.flush();
}

BinaryRecordReader::BinaryRecordReader(std::istream& in, OnError on_error)
    : in_(in), on_error_(on_error) {
  unsigned char header[kHeaderFixed];
  in_.read(reinterpret_cast<char*>(header), kHeaderFixed);
  if (in_.gcount() != kHeaderFixed ||
      std::memcmp(header, kBinaryLogMagic, 8) != 0) {
    throw std::runtime_error("binary log: bad magic (not a DMLRAW1 stream)");
  }
  const std::uint32_t version = get_u32(header + 8);
  if (version != kBinaryLogVersion) {
    throw std::runtime_error("binary log: unsupported version " +
                             std::to_string(version));
  }
  const std::uint32_t machine_len = get_u32(header + 12);
  if (machine_len > 4096) {
    throw std::runtime_error("binary log: implausible machine name length");
  }
  machine_.resize(machine_len);
  in_.read(machine_.data(), machine_len);
  if (in_.gcount() != static_cast<std::streamsize>(machine_len)) {
    throw std::runtime_error("binary log: truncated header");
  }
  offset_ = kHeaderFixed + machine_len;
}

std::optional<bgl::RasRecord> BinaryRecordReader::next() {
  while (!done_) {
    unsigned char prefix[kFramePrefix];
    in_.read(reinterpret_cast<char*>(prefix), kFramePrefix);
    const std::streamsize got = in_.gcount();
    if (got == 0) return std::nullopt;  // clean end of stream

    ++stats_.lines;
    const std::uint64_t ordinal = stats_.lines;
    const auto reject = [&](const std::string& reason)
        -> std::optional<bgl::RasRecord> {
      if (on_error_ == OnError::kThrow) {
        throw std::runtime_error("binary log: " + reason + " (record " +
                                 std::to_string(ordinal) + ", offset " +
                                 std::to_string(offset_) + ")");
      }
      stats_.note_skip(static_cast<std::size_t>(ordinal), reason);
      done_ = true;  // cannot resynchronise a variable-length stream
      return std::nullopt;
    };

    if (got != static_cast<std::streamsize>(kFramePrefix)) {
      return reject("truncated record prefix");
    }

    const common::FailAction action =
        common::failpoint(common::failpoints::kLogioParse);
    if (action == common::FailAction::kCorrupt) {
      prefix[0] ^= 0xFF;  // the CRC check below must now reject it
    }

    const std::uint32_t entry_len = get_u32(prefix + 28);
    if (entry_len > kMaxEntryData) {
      return reject("entry length " + std::to_string(entry_len) +
                    " exceeds limit");
    }

    bgl::RasRecord record;
    record.entry_data.resize(entry_len);
    in_.read(record.entry_data.data(), entry_len);
    unsigned char trailer[4];
    std::streamsize tail_got = 0;
    if (in_.gcount() == static_cast<std::streamsize>(entry_len)) {
      in_.read(reinterpret_cast<char*>(trailer), 4);
      tail_got = in_.gcount();
    }
    if (tail_got != 4) return reject("truncated record body");
    offset_ += kFramePrefix + entry_len + 4;

    std::uint32_t crc = common::crc32(prefix, kFramePrefix);
    crc = common::crc32(record.entry_data.data(), entry_len, crc);
    if (crc != get_u32(trailer)) return reject("record CRC mismatch");

    if (action == common::FailAction::kDrop) {
      stats_.note_skip(static_cast<std::size_t>(ordinal),
                       "record dropped by failpoint");
      continue;  // frame fully consumed; the stream is still aligned
    }

    if (prefix[24] > 2) return reject("bad event type");
    if (prefix[25] >= bgl::kNumFacilities) return reject("bad facility");
    if (prefix[26] >= kNumSeverities) return reject("bad severity");

    record.record_id = get_u64(prefix);
    record.event_time = static_cast<TimeSec>(get_u64(prefix + 8));
    record.job_id = get_u32(prefix + 16);
    record.location = bgl::Location::from_packed(get_u32(prefix + 20));
    record.event_type = static_cast<bgl::EventType>(prefix[24]);
    record.facility = static_cast<bgl::Facility>(prefix[25]);
    record.severity = static_cast<Severity>(prefix[26]);
    ++stats_.parsed;
    return record;
  }
  return std::nullopt;
}

LogFile read_binary_log(std::istream& in) {
  BinaryRecordReader reader(in);
  LogFile file;
  file.machine = reader.machine();
  while (auto record = reader.next()) {
    file.records.push_back(std::move(*record));
  }
  return file;
}

}  // namespace dml::logio
