#include "logio/event_store.hpp"

#include <algorithm>

namespace dml::logio {

namespace {

/// Batch reads over a contiguous span; the owning store must outlive it.
class SpanCursor : public storage::EventCursor {
 public:
  explicit SpanCursor(std::span<const bgl::Event> span) : span_(span) {}

  std::size_t next(std::vector<bgl::Event>& out, std::size_t max) override {
    const std::size_t n = std::min(max, span_.size() - pos_);
    out.insert(out.end(), span_.begin() + pos_, span_.begin() + pos_ + n);
    pos_ += n;
    return n;
  }

 private:
  std::span<const bgl::Event> span_;
  std::size_t pos_ = 0;
};

}  // namespace

EventStore::EventStore(std::vector<bgl::Event> events)
    : events_(std::move(events)) {
  // stable_sort, not sort: ties under EventTimeOrder must land in input
  // order so this store and a CanonicalAppender-written disk log agree
  // on the exact event sequence (duplicate events do occur upstream of
  // temporal filtering).
  std::stable_sort(events_.begin(), events_.end(), bgl::EventTimeOrder{});
  for (const auto& e : events_) {
    if (e.fatal) fatal_times_.push_back(e.time);
  }
}

std::unique_ptr<storage::EventCursor> EventStore::scan(TimeSec begin,
                                                       TimeSec end) const {
  return std::make_unique<SpanCursor>(between(begin, end));
}

std::span<const bgl::Event> EventStore::between(TimeSec begin,
                                                TimeSec end) const {
  const auto lo = std::lower_bound(
      events_.begin(), events_.end(), begin,
      [](const bgl::Event& e, TimeSec t) { return e.time < t; });
  const auto hi = std::lower_bound(
      lo, events_.end(), end,
      [](const bgl::Event& e, TimeSec t) { return e.time < t; });
  return {events_.data() + (lo - events_.begin()),
          static_cast<std::size_t>(hi - lo)};
}

TimeSec EventStore::first_time() const {
  return events_.empty() ? 0 : events_.front().time;
}

TimeSec EventStore::last_time() const {
  return events_.empty() ? 0 : events_.back().time;
}

std::size_t EventStore::fatal_count_between(TimeSec begin, TimeSec end) const {
  const auto lo =
      std::lower_bound(fatal_times_.begin(), fatal_times_.end(), begin);
  const auto hi = std::lower_bound(lo, fatal_times_.end(), end);
  return static_cast<std::size_t>(hi - lo);
}

std::vector<std::size_t> EventStore::fatal_per_day(TimeSec origin,
                                                   TimeSec end_time) const {
  std::vector<std::size_t> counts;
  if (end_time <= origin) return counts;
  counts.assign(
      static_cast<std::size_t>((end_time - origin + kSecondsPerDay - 1) /
                               kSecondsPerDay),
      0);
  for (TimeSec t : fatal_times_) {
    if (t < origin || t >= end_time) continue;
    ++counts[static_cast<std::size_t>(day_index(t, origin))];
  }
  return counts;
}

}  // namespace dml::logio
