#include "logio/event_store.hpp"

#include <algorithm>

namespace dml::logio {

EventStore::EventStore(std::vector<bgl::Event> events)
    : events_(std::move(events)) {
  std::sort(events_.begin(), events_.end(), bgl::EventTimeOrder{});
  for (const auto& e : events_) {
    if (e.fatal) fatal_times_.push_back(e.time);
  }
}

std::span<const bgl::Event> EventStore::between(TimeSec begin,
                                                TimeSec end) const {
  const auto lo = std::lower_bound(
      events_.begin(), events_.end(), begin,
      [](const bgl::Event& e, TimeSec t) { return e.time < t; });
  const auto hi = std::lower_bound(
      lo, events_.end(), end,
      [](const bgl::Event& e, TimeSec t) { return e.time < t; });
  return {events_.data() + (lo - events_.begin()),
          static_cast<std::size_t>(hi - lo)};
}

TimeSec EventStore::first_time() const {
  return events_.empty() ? 0 : events_.front().time;
}

TimeSec EventStore::last_time() const {
  return events_.empty() ? 0 : events_.back().time;
}

std::size_t EventStore::fatal_count_between(TimeSec begin, TimeSec end) const {
  const auto lo =
      std::lower_bound(fatal_times_.begin(), fatal_times_.end(), begin);
  const auto hi = std::lower_bound(lo, fatal_times_.end(), end);
  return static_cast<std::size_t>(hi - lo);
}

std::vector<std::size_t> EventStore::fatal_per_day(TimeSec origin,
                                                   TimeSec end_time) const {
  std::vector<std::size_t> counts;
  if (end_time <= origin) return counts;
  counts.assign(
      static_cast<std::size_t>((end_time - origin + kSecondsPerDay - 1) /
                               kSecondsPerDay),
      0);
  for (TimeSec t : fatal_times_) {
    if (t < origin || t >= end_time) continue;
    ++counts[static_cast<std::size_t>(day_index(t, origin))];
  }
  return counts;
}

}  // namespace dml::logio
