#include "logio/text_format.hpp"

#include <array>
#include <charconv>
#include <stdexcept>

#include "common/civil_time.hpp"
#include "common/failpoint.hpp"
#include "common/string_util.hpp"

namespace dml::logio {
namespace {

constexpr std::string_view kHeaderPrefix = "# BGL-RAS-LOG v1 machine=";

template <typename T>
std::optional<T> parse_number(std::string_view s) {
  T value{};
  const auto* first = s.data();
  const auto* last = s.data() + s.size();
  auto [ptr, ec] = std::from_chars(first, last, value);
  if (ec != std::errc{} || ptr != last) return std::nullopt;
  return value;
}

}  // namespace

std::string record_to_line(const bgl::RasRecord& r) {
  std::string line;
  line.reserve(96 + r.entry_data.size());
  line += std::to_string(r.record_id);
  line += '|';
  line += to_string(r.event_type);
  line += '|';
  line += format_timestamp(r.event_time);
  line += '|';
  line += std::to_string(r.job_id);
  line += '|';
  line += r.location.to_string();
  line += '|';
  line += to_string(r.facility);
  line += '|';
  line += to_string(r.severity);
  line += '|';
  line += r.entry_data;
  return line;
}

std::optional<bgl::RasRecord> parse_line(std::string_view line,
                                         std::string* reason) {
  const auto reject = [&](std::string_view what) {
    if (reason) *reason = std::string(what);
    return std::nullopt;
  };
  // Split into at most 8 fields; ENTRY_DATA keeps any further pipes.
  std::array<std::string_view, 8> fields;
  std::size_t start = 0;
  for (int i = 0; i < 7; ++i) {
    const std::size_t pos = line.find('|', start);
    if (pos == std::string_view::npos) {
      return reject("expected 8 '|'-delimited fields");
    }
    fields[static_cast<std::size_t>(i)] = line.substr(start, pos - start);
    start = pos + 1;
  }
  fields[7] = line.substr(start);

  const auto record_id = parse_number<RecordId>(fields[0]);
  if (!record_id) return reject("bad RECID");
  const auto event_type = bgl::event_type_from_string(fields[1]);
  if (!event_type) return reject("bad EVENT_TYPE");
  const auto event_time = parse_timestamp(fields[2]);
  if (!event_time) return reject("bad TIMESTAMP");
  const auto job_id = parse_number<JobId>(fields[3]);
  if (!job_id) return reject("bad JOBID");
  const auto location = bgl::Location::parse(fields[4]);
  if (!location) return reject("bad LOCATION");
  const auto facility = bgl::facility_from_string(fields[5]);
  if (!facility) return reject("bad FACILITY");
  const auto severity = severity_from_string(fields[6]);
  if (!severity) return reject("bad SEVERITY");

  bgl::RasRecord r;
  r.record_id = *record_id;
  r.event_type = *event_type;
  r.event_time = *event_time;
  r.job_id = *job_id;
  r.location = *location;
  r.facility = *facility;
  r.severity = *severity;
  r.entry_data = std::string(fields[7]);
  return r;
}

void write_log(std::ostream& out, std::string_view machine,
               const std::vector<bgl::RasRecord>& records) {
  out << kHeaderPrefix << machine << '\n';
  for (const auto& r : records) {
    out << record_to_line(r) << '\n';
  }
}

LogFile read_log(std::istream& in) {
  RecordReader reader(in);
  LogFile log;
  log.machine = reader.machine();
  while (auto record = reader.next()) {
    log.records.push_back(std::move(*record));
  }
  return log;
}

RecordReader::RecordReader(std::istream& in, OnError on_error)
    : in_(in), on_error_(on_error) {
  std::string line;
  if (std::getline(in_, line)) {
    ++line_number_;
    if (starts_with(line, kHeaderPrefix)) {
      machine_ = line.substr(kHeaderPrefix.size());
    } else {
      throw std::runtime_error("RAS log: missing header line");
    }
  }
}

std::optional<bgl::RasRecord> RecordReader::next() {
  std::string line;
  std::string corrupted;
  while (std::getline(in_, line)) {
    ++line_number_;
    std::string_view view = trim(line);
    if (view.empty() || view.front() == '#') continue;
    ++stats_.lines;
    switch (common::failpoint(common::failpoints::kLogioParse)) {
      case common::FailAction::kDrop:
        stats_.note_skip(line_number_, "dropped by failpoint");
        continue;
      case common::FailAction::kCorrupt:
        // Mangle the RECID field so the parser must reject the line —
        // the simulated "corrupt record in the archive" case.
        corrupted.assign(1, '\x01');
        corrupted += view;
        view = corrupted;
        break;
      default:
        break;
    }
    std::string reason;
    auto record = parse_line(view, &reason);
    if (!record) {
      stats_.note_skip(line_number_, reason);
      if (on_error_ == OnError::kThrow) {
        throw std::runtime_error("RAS log: malformed record at line " +
                                 std::to_string(line_number_) + ": " +
                                 reason);
      }
      continue;
    }
    ++stats_.parsed;
    return record;
  }
  return std::nullopt;
}

std::size_t serialized_size(const bgl::RasRecord& record) {
  // RECID digits + fixed-ish fields + entry data + delimiters + newline.
  return std::to_string(record.record_id).size() + 19 /*timestamp*/ +
         to_string(record.event_type).size() +
         std::to_string(record.job_id).size() +
         record.location.to_string().size() +
         to_string(record.facility).size() +
         to_string(record.severity).size() + record.entry_data.size() +
         8;  // 7 pipes + '\n'
}

}  // namespace dml::logio
