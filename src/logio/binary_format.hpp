// Binary serialization of raw RAS logs — the compact sibling of
// text_format.  Same data model (RasRecord, Table 1), ~3x smaller and
// an order of magnitude faster to parse, with per-record CRC-32 so a
// truncated or corrupt stream is detected at the exact record.
//
// Stream layout (all integers little-endian):
//   header:  magic "DMLRAW1\0" | version u32 | machine_len u32 | machine
//   record:  record_id u64 | event_time i64 | job_id u32 |
//            location u32 | event_type u8 | facility u8 | severity u8 |
//            pad u8 | entry_len u32 | entry_data bytes |
//            crc32 u32 (over everything since record_id)
//
// This is the raw-record transport (`dmlfp generate --format binary`);
// the categorized-event data plane has its own fixed-stride format in
// storage/format.hpp.
#pragma once

#include <cstdint>
#include <istream>
#include <optional>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

#include "logio/record_sink.hpp"
#include "logio/text_format.hpp"

namespace dml::logio {

inline constexpr unsigned char kBinaryLogMagic[8] = {'D', 'M', 'L', 'R',
                                                     'A', 'W', '1', '\0'};
inline constexpr std::uint32_t kBinaryLogVersion = 1;
/// Upper bound accepted for one ENTRY_DATA field; anything larger is
/// treated as corruption rather than allocated.
inline constexpr std::uint32_t kMaxEntryData = 1u << 20;

void write_binary_log(std::ostream& out, std::string_view machine,
                      const std::vector<bgl::RasRecord>& records);

/// Reads a full binary log; throws std::runtime_error on a malformed
/// header or record (with the record ordinal and byte offset).
LogFile read_binary_log(std::istream& in);

/// Serializes records to a binary-format stream (header written up
/// front) — the binary counterpart of StreamSink.
class BinaryStreamSink final : public RecordSink {
 public:
  BinaryStreamSink(std::ostream& out, std::string_view machine);
  void consume(const bgl::RasRecord& record) override;

  std::uint64_t records_written() const { return records_written_; }
  std::uint64_t bytes_written() const { return bytes_written_; }

 private:
  std::ostream& out_;
  std::vector<unsigned char> scratch_;
  std::uint64_t records_written_ = 0;
  std::uint64_t bytes_written_ = 0;
};

/// Incremental binary reader, API-compatible with RecordReader so
/// loaders can switch on the input format.  The `logio.parse` failpoint
/// applies here too: corrupt flips a frame byte (the CRC then rejects
/// the record per the OnError policy), drop skips the record.
///
/// OnError::kSkip note: unlike the line-oriented text reader, a
/// variable-length binary stream cannot resynchronise past a bad
/// frame; a rejected record is counted and the stream ends there (the
/// torn-tail contract of the storage layer).
class BinaryRecordReader {
 public:
  using OnError = RecordReader::OnError;

  explicit BinaryRecordReader(std::istream& in,
                              OnError on_error = OnError::kThrow);

  const std::string& machine() const { return machine_; }

  /// Next record, or nullopt at end of stream.
  std::optional<bgl::RasRecord> next();

  /// Records consumed so far (the binary analogue of line_number()).
  std::uint64_t record_number() const { return stats_.lines; }
  const ReadStats& read_stats() const { return stats_; }

 private:
  std::istream& in_;
  OnError on_error_;
  std::string machine_;
  std::uint64_t offset_ = 0;  ///< stream offset of the next frame
  bool done_ = false;
  ReadStats stats_;
};

/// Exact serialized size in bytes of one record in this format.
std::size_t binary_serialized_size(const bgl::RasRecord& record);

// ---- Record-frame codec -------------------------------------------------
// The per-record byte layout of the stream (prefix + ENTRY_DATA + CRC
// trailer), exposed as buffer-level functions so other transports — the
// network wire protocol's INGEST_RECORDS frames — carry records in
// exactly the on-disk encoding.  BinaryStreamSink and the stream reader
// are thin wrappers over these.

/// Appends one framed record to `out`.
void append_record_frame(std::vector<unsigned char>& out,
                         const bgl::RasRecord& record);

enum class RecordFrameStatus {
  kOk,        ///< *out filled, *consumed = whole frame
  kNeedMore,  ///< buffer ends mid-frame (*consumed = 0)
  kBad,       ///< CRC or field validation failed (*reason says why)
};

/// Decodes one framed record from the front of [data, data + size),
/// with the same CRC and field validation as the stream reader.
RecordFrameStatus decode_record_frame(const unsigned char* data,
                                      std::size_t size, bgl::RasRecord* out,
                                      std::size_t* consumed,
                                      std::string* reason = nullptr);

}  // namespace dml::logio
