// The meta-learner (paper §4.1, Figure 6): a mixture-of-experts ensemble
// over the base learners.  It does not modify the base methods — it
// trains each on the same set, pools their candidate rules into the
// knowledge repository, and fixes the dispatch precedence the predictor
// uses (association -> statistical -> probability distribution, the
// ordering determined by verification on the training data).
#pragma once

#include <array>
#include <memory>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "learners/association_learner.hpp"
#include "learners/correlation/correlation_learner.hpp"
#include "learners/decision_tree_learner.hpp"
#include "learners/distribution_learner.hpp"
#include "learners/neural_net_learner.hpp"
#include "learners/statistical_learner.hpp"
#include "meta/knowledge_repository.hpp"

namespace dml::meta {

struct MetaLearnerConfig {
  learners::AssociationConfig association;
  learners::StatisticalConfig statistical;
  learners::DistributionConfig distribution;
  learners::DecisionTreeConfig decision_tree;
  learners::NeuralNetLearnerConfig neural_net;
  learners::CorrelationConfig correlation;
  /// Which base learners participate (the paper's trio by default; the
  /// Figure 7 bench disables two at a time to measure each learner
  /// standalone).
  bool enable_association = true;
  bool enable_statistical = true;
  bool enable_distribution = true;
  /// The §7 future-work learners; off by default so the headline
  /// reproduction uses exactly the paper's ensemble.
  bool enable_decision_tree = false;
  bool enable_neural_net = false;
  /// The correlation-graph chain miner (DESIGN.md §14); off by default
  /// for the same reason.
  bool enable_correlation = false;
  /// Train base learners concurrently on the shared pool ("the rule
  /// generation process can be conducted in parallel", §5.2.4).
  bool parallel_training = true;
};

/// A base learner failed mid-training, tagged with which one so retrain
/// failure records can attribute the failure per learner.
class LearnerError : public std::runtime_error {
 public:
  LearnerError(std::string stage, const std::string& message)
      : std::runtime_error(stage + " learner failed: " + message),
        stage_(std::move(stage)) {}

  /// Learner name as in learners::to_string(RuleSource).
  const std::string& stage() const { return stage_; }

 private:
  std::string stage_;
};

/// Wall-clock cost of one training pass, per stage (Table 5 columns).
struct TrainTimes {
  double association_seconds = 0.0;
  double statistical_seconds = 0.0;
  double distribution_seconds = 0.0;
  double decision_tree_seconds = 0.0;
  double neural_net_seconds = 0.0;
  double correlation_seconds = 0.0;
  /// Ensemble assembly (+ the reviser when run by the caller).
  double ensemble_seconds = 0.0;

  double total_seconds() const {
    return association_seconds + statistical_seconds + distribution_seconds +
           decision_tree_seconds + neural_net_seconds + correlation_seconds +
           ensemble_seconds;
  }

  TrainTimes& operator+=(const TrainTimes& other) {
    association_seconds += other.association_seconds;
    statistical_seconds += other.statistical_seconds;
    distribution_seconds += other.distribution_seconds;
    decision_tree_seconds += other.decision_tree_seconds;
    neural_net_seconds += other.neural_net_seconds;
    correlation_seconds += other.correlation_seconds;
    ensemble_seconds += other.ensemble_seconds;
    return *this;
  }
};

class MetaLearner {
 public:
  explicit MetaLearner(MetaLearnerConfig config = {});

  /// Trains every enabled base learner on `training` and pools the
  /// candidate rules.  `times`, when given, receives per-stage costs.
  KnowledgeRepository learn(std::span<const bgl::Event> training,
                            DurationSec window,
                            TrainTimes* times = nullptr) const;

  const MetaLearnerConfig& config() const { return config_; }

 private:
  MetaLearnerConfig config_;
  learners::AssociationLearner association_;
  learners::StatisticalLearner statistical_;
  learners::DistributionLearner distribution_;
  learners::DecisionTreeLearner decision_tree_;
  learners::NeuralNetLearner neural_net_;
  learners::CorrelationLearner correlation_;
};

}  // namespace dml::meta
