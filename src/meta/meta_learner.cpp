#include "meta/meta_learner.hpp"

#include <chrono>
#include <future>

#include "common/thread_pool.hpp"

namespace dml::meta {
namespace {

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

}  // namespace

MetaLearner::MetaLearner(MetaLearnerConfig config)
    : config_(config),
      association_(config.association),
      statistical_(config.statistical),
      distribution_(config.distribution),
      decision_tree_(config.decision_tree),
      neural_net_(config.neural_net),
      correlation_(config.correlation) {}

KnowledgeRepository MetaLearner::learn(std::span<const bgl::Event> training,
                                       DurationSec window,
                                       TrainTimes* times) const {
  using Clock = std::chrono::steady_clock;

  auto run_learner = [&](const learners::BaseLearner& learner,
                         double* seconds) {
    const auto start = Clock::now();
    try {
      auto rules = learner.learn(training, window);
      if (seconds != nullptr) *seconds = seconds_since(start);
      return rules;
    } catch (const LearnerError&) {
      throw;
    } catch (const std::exception& e) {
      // Tag the failure with the learner it came from; retrain failure
      // records surface the stage to the operator.
      throw LearnerError(std::string(learners::to_string(learner.source())),
                         e.what());
    }
  };

  TrainTimes local;
  std::vector<learners::Rule> association_rules;
  std::vector<learners::Rule> statistical_rules;
  std::vector<learners::Rule> distribution_rules;
  std::vector<learners::Rule> tree_rules;
  std::vector<learners::Rule> net_rules;
  std::vector<learners::Rule> chain_rules;

  if (config_.parallel_training && ThreadPool::shared().size() > 1) {
    // Statistical, distribution, tree, net, and correlation learning go
    // to the pool; association mining (the expensive stage) runs on the
    // calling thread.
    std::future<std::vector<learners::Rule>> stat_future;
    std::future<std::vector<learners::Rule>> dist_future;
    std::future<std::vector<learners::Rule>> tree_future;
    std::future<std::vector<learners::Rule>> net_future;
    std::future<std::vector<learners::Rule>> chain_future;
    if (config_.enable_statistical) {
      stat_future = ThreadPool::shared().submit([&] {
        return run_learner(statistical_, &local.statistical_seconds);
      });
    }
    if (config_.enable_distribution) {
      dist_future = ThreadPool::shared().submit([&] {
        return run_learner(distribution_, &local.distribution_seconds);
      });
    }
    if (config_.enable_decision_tree) {
      tree_future = ThreadPool::shared().submit([&] {
        return run_learner(decision_tree_, &local.decision_tree_seconds);
      });
    }
    if (config_.enable_neural_net) {
      net_future = ThreadPool::shared().submit([&] {
        return run_learner(neural_net_, &local.neural_net_seconds);
      });
    }
    if (config_.enable_correlation) {
      chain_future = ThreadPool::shared().submit([&] {
        return run_learner(correlation_, &local.correlation_seconds);
      });
    }
    if (config_.enable_association) {
      association_rules = run_learner(association_, &local.association_seconds);
    }
    if (stat_future.valid()) statistical_rules = stat_future.get();
    if (dist_future.valid()) distribution_rules = dist_future.get();
    if (tree_future.valid()) tree_rules = tree_future.get();
    if (net_future.valid()) net_rules = net_future.get();
    if (chain_future.valid()) chain_rules = chain_future.get();
  } else {
    if (config_.enable_association) {
      association_rules = run_learner(association_, &local.association_seconds);
    }
    if (config_.enable_statistical) {
      statistical_rules = run_learner(statistical_, &local.statistical_seconds);
    }
    if (config_.enable_distribution) {
      distribution_rules =
          run_learner(distribution_, &local.distribution_seconds);
    }
    if (config_.enable_decision_tree) {
      tree_rules = run_learner(decision_tree_, &local.decision_tree_seconds);
    }
    if (config_.enable_neural_net) {
      net_rules = run_learner(neural_net_, &local.neural_net_seconds);
    }
    if (config_.enable_correlation) {
      chain_rules = run_learner(correlation_, &local.correlation_seconds);
    }
  }

  const auto ensemble_start = Clock::now();
  KnowledgeRepository repository;
  // Insertion order encodes the mixture-of-experts precedence:
  // association, then the correlation chains (a pattern expert like
  // association, but over ordered cross-window cascades), then
  // statistical, then decision tree, then probability distribution as
  // the fallback expert.
  for (auto& rule : association_rules) repository.add(std::move(rule));
  for (auto& rule : chain_rules) repository.add(std::move(rule));
  for (auto& rule : statistical_rules) repository.add(std::move(rule));
  for (auto& rule : tree_rules) repository.add(std::move(rule));
  for (auto& rule : net_rules) repository.add(std::move(rule));
  for (auto& rule : distribution_rules) repository.add(std::move(rule));
  local.ensemble_seconds = seconds_since(ensemble_start);

  if (times != nullptr) *times = local;
  return repository;
}

}  // namespace dml::meta
