// RCU-style publication of the knowledge repository.  Retraining builds
// a fresh KnowledgeRepository off to the side (on ThreadPool::shared()),
// freezes it behind a shared_ptr-to-const, and publishes it with one
// atomic swap; readers that loaded the previous snapshot keep a valid
// reference for as long as they hold the pointer.  This is what lets the
// prediction path keep serving the old rule set while the next one is
// being mined (paper Table 5, Observation #8).
#pragma once

#include <memory>
#include <utility>

#include "common/annotations.hpp"
#include "common/failpoint.hpp"
#include "meta/knowledge_repository.hpp"

namespace dml::meta {

/// An immutable, shareable rule set.  Every consumer (Predictor,
/// reporting, tests) reads through the const interface; mutation happens
/// only while a build owns the repository exclusively, before freezing.
using RepositorySnapshot = std::shared_ptr<const KnowledgeRepository>;

/// A process-wide empty snapshot, so readers never observe nullptr.
RepositorySnapshot empty_snapshot();

/// Freezes a mutable repository into a snapshot.
inline RepositorySnapshot freeze(KnowledgeRepository repository) {
  return std::make_shared<const KnowledgeRepository>(std::move(repository));
}

/// The swap point: writers publish with store(), readers pin the current
/// snapshot with load().  Each is one pointer swap under a micro-mutex —
/// the critical section is a shared_ptr copy, never rule-set work: the
/// displaced snapshot is released *outside* the lock, so a writer
/// dropping the last reference to a large repository cannot stall
/// readers.  A reader holding an old snapshot keeps it alive until it
/// lets go (classic read-copy-update double buffering).
///
/// (Not std::atomic<shared_ptr>: libstdc++'s implementation unlocks its
/// internal spinlock with relaxed ordering in load(), which is flagged
/// by ThreadSanitizer; the mutex form is portable and TSan-clean.)
class SnapshotPublisher {
 public:
  SnapshotPublisher() : current_(empty_snapshot()) {}
  explicit SnapshotPublisher(RepositorySnapshot initial)
      : current_(std::move(initial)) {}

  SnapshotPublisher(const SnapshotPublisher&) = delete;
  SnapshotPublisher& operator=(const SnapshotPublisher&) = delete;

  /// Pins and returns the snapshot currently in force.
  RepositorySnapshot load() const DML_EXCLUDES(mutex_) {
    common::MutexLock lock(mutex_);
    return current_;
  }

  /// Replaces the snapshot in force with one pointer swap.
  void store(RepositorySnapshot next) DML_EXCLUDES(mutex_) {
    // Fault injection: `snapshot.publish` can stall (delay) or abort
    // (throw) a publication before the swap; evaluated outside the lock.
    common::failpoint(common::failpoints::kSnapshotPublish);
    RepositorySnapshot displaced;
    {
      common::MutexLock lock(mutex_);
      displaced = std::exchange(current_, std::move(next));
    }
    // `displaced` destroyed here, outside the lock.
  }

 private:
  mutable common::Mutex mutex_;
  RepositorySnapshot current_ DML_GUARDED_BY(mutex_);
};

}  // namespace dml::meta
