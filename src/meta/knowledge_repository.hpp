// The knowledge repository (paper Figure 1): the set of learned failure-
// pattern rules in force, "subjected to modifications made by the
// reviser at runtime", plus the churn accounting behind Figure 12.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "learners/rule.hpp"
#include "stats/metrics.hpp"

namespace dml::meta {

struct StoredRule {
  std::uint64_t id = 0;
  learners::Rule rule;
  /// Per-rule counts measured on the training data by the reviser.
  stats::ConfusionCounts training_counts;
  /// sqrt(m1^2 + m2^2) from Algorithm 1; 0 until revised.
  double roc = 0.0;
};

class KnowledgeRepository {
 public:
  std::uint64_t add(learners::Rule rule);

  /// Removes by id; returns false if absent.
  bool remove(std::uint64_t id);

  const std::vector<StoredRule>& rules() const { return rules_; }
  std::size_t size() const { return rules_.size(); }
  bool empty() const { return rules_.empty(); }

  StoredRule* find(std::uint64_t id);
  const StoredRule* find(std::uint64_t id) const;

  std::size_t count_by_source(learners::RuleSource source) const;

  /// Rule-churn between consecutive retrainings (Figure 12), matching by
  /// rule identity: rules present in both are "unchanged", present only
  /// in `after` are "added", only in `before` are "removed".
  struct Churn {
    std::size_t unchanged = 0;
    std::size_t added = 0;
    std::size_t removed = 0;

    double change_rate() const {
      return unchanged == 0
                 ? 0.0
                 : static_cast<double>(added + removed) /
                       static_cast<double>(unchanged);
    }
  };
  static Churn diff(const KnowledgeRepository& before,
                    const KnowledgeRepository& after);

 private:
  std::vector<StoredRule> rules_;
  std::uint64_t next_id_ = 1;
};

}  // namespace dml::meta
