#include "meta/knowledge_repository.hpp"

#include <algorithm>
#include <unordered_set>

namespace dml::meta {

std::uint64_t KnowledgeRepository::add(learners::Rule rule) {
  StoredRule stored;
  stored.id = next_id_++;
  stored.rule = std::move(rule);
  rules_.push_back(std::move(stored));
  return rules_.back().id;
}

bool KnowledgeRepository::remove(std::uint64_t id) {
  const auto it =
      std::find_if(rules_.begin(), rules_.end(),
                   [id](const StoredRule& r) { return r.id == id; });
  if (it == rules_.end()) return false;
  rules_.erase(it);
  return true;
}

StoredRule* KnowledgeRepository::find(std::uint64_t id) {
  for (auto& r : rules_) {
    if (r.id == id) return &r;
  }
  return nullptr;
}

const StoredRule* KnowledgeRepository::find(std::uint64_t id) const {
  for (const auto& r : rules_) {
    if (r.id == id) return &r;
  }
  return nullptr;
}

std::size_t KnowledgeRepository::count_by_source(
    learners::RuleSource source) const {
  return static_cast<std::size_t>(
      std::count_if(rules_.begin(), rules_.end(), [&](const StoredRule& r) {
        return r.rule.source() == source;
      }));
}

KnowledgeRepository::Churn KnowledgeRepository::diff(
    const KnowledgeRepository& before, const KnowledgeRepository& after) {
  std::unordered_set<std::string> old_ids;
  for (const auto& r : before.rules_) old_ids.insert(r.rule.identity());
  std::unordered_set<std::string> new_ids;
  for (const auto& r : after.rules_) new_ids.insert(r.rule.identity());

  Churn churn;
  for (const auto& id : new_ids) {
    if (old_ids.contains(id)) {
      ++churn.unchanged;
    } else {
      ++churn.added;
    }
  }
  for (const auto& id : old_ids) {
    if (!new_ids.contains(id)) ++churn.removed;
  }
  return churn;
}

}  // namespace dml::meta
