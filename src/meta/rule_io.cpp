#include "meta/rule_io.hpp"

#include <algorithm>
#include <charconv>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <stdexcept>
#include <vector>

#include "common/string_util.hpp"

namespace dml::meta {
namespace {

// v2 added the CC (correlation chain) line type.  Writers emit the
// current version; the reader accepts any known one, so rule files
// produced before the chain learner existed still load.
constexpr std::string_view kHeaderV1 = "# DML-RULES v1";
constexpr std::string_view kHeaderV2 = "# DML-RULES v2";

std::optional<double> parse_double(std::string_view s) {
  // std::from_chars<double> support is spotty pre-GCC11 for some modes;
  // strtod via a bounded copy keeps this portable.
  char buf[64];
  if (s.size() >= sizeof(buf)) return std::nullopt;
  std::memcpy(buf, s.data(), s.size());
  buf[s.size()] = '\0';
  char* end = nullptr;
  const double value = std::strtod(buf, &end);
  if (end != buf + s.size()) return std::nullopt;
  return value;
}

std::optional<std::int64_t> parse_int(std::string_view s) {
  std::int64_t value = 0;
  auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), value);
  if (ec != std::errc{} || ptr != s.data() + s.size()) return std::nullopt;
  return value;
}

std::string format_double(double value) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.12g", value);
  return buf;
}

std::optional<learners::Rule> parse_association(
    const std::vector<std::string_view>& fields,
    const bgl::Taxonomy& taxonomy) {
  if (fields.size() != 5) return std::nullopt;
  const auto confidence = parse_double(fields[1]);
  const auto support = parse_double(fields[2]);
  const auto consequent = taxonomy.find_by_name(fields[3]);
  if (!confidence || !support || !consequent) return std::nullopt;

  learners::AssociationRule rule;
  rule.confidence = *confidence;
  rule.support = *support;
  rule.consequent = *consequent;
  for (std::string_view name : split(fields[4], ',')) {
    const auto id = taxonomy.find_by_name(name);
    if (!id) return std::nullopt;
    rule.antecedent.push_back(*id);
  }
  if (rule.antecedent.empty()) return std::nullopt;
  std::sort(rule.antecedent.begin(), rule.antecedent.end());
  return learners::Rule{learners::Rule::Body(std::move(rule))};
}

std::optional<learners::Rule> parse_statistical(
    const std::vector<std::string_view>& fields) {
  if (fields.size() != 3) return std::nullopt;
  const auto k = parse_int(fields[1]);
  const auto probability = parse_double(fields[2]);
  if (!k || *k < 1 || !probability) return std::nullopt;
  return learners::Rule{learners::Rule::Body(
      learners::StatisticalRule{static_cast<int>(*k), *probability})};
}

// GCC 12's -Wmaybe-uninitialized false-positives on copying a variant
// whose active alternative is smaller than the storage (the Exponential
// arm of LifetimeModel); the tail bytes it flags are never read.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"
std::optional<learners::Rule> parse_distribution(
    const std::vector<std::string_view>& fields) {
  if (fields.size() != 6) return std::nullopt;
  const auto p1 = parse_double(fields[2]);
  const auto p2 = parse_double(fields[3]);
  const auto threshold = parse_double(fields[4]);
  const auto trigger = parse_int(fields[5]);
  if (!p1 || !p2 || !threshold || !trigger) return std::nullopt;

  learners::DistributionRule rule;
  if (fields[1] == "weibull") {
    rule.model = stats::LifetimeModel{
        stats::LifetimeModel::Variant(stats::Weibull{*p1, *p2})};
  } else if (fields[1] == "exponential") {
    rule.model = stats::LifetimeModel{
        stats::LifetimeModel::Variant(stats::Exponential{*p1})};
  } else if (fields[1] == "lognormal") {
    rule.model = stats::LifetimeModel{
        stats::LifetimeModel::Variant(stats::LogNormal{*p1, *p2})};
  } else {
    return std::nullopt;
  }
  rule.cdf_threshold = *threshold;
  rule.elapsed_trigger = *trigger;
  return learners::Rule{learners::Rule::Body(std::move(rule))};
}
#pragma GCC diagnostic pop

std::optional<learners::Rule> parse_decision_tree(
    const std::vector<std::string_view>& fields) {
  if (fields.size() != 3) return std::nullopt;
  const auto threshold = parse_double(fields[1]);
  auto tree = learners::DecisionTree::deserialize(fields[2]);
  if (!threshold || !tree) return std::nullopt;
  learners::DecisionTreeRule rule;
  rule.tree = std::move(*tree);
  rule.probability_threshold = *threshold;
  return learners::Rule{learners::Rule::Body(std::move(rule))};
}

std::optional<learners::Rule> parse_correlation(
    const std::vector<std::string_view>& fields,
    const bgl::Taxonomy& taxonomy) {
  if (fields.size() != 6) return std::nullopt;
  const auto confidence = parse_double(fields[1]);
  const auto support = parse_double(fields[2]);
  const auto stage_window = parse_int(fields[3]);
  const auto consequent = taxonomy.find_by_name(fields[4]);
  if (!confidence || !support || !stage_window || *stage_window <= 0 ||
      !consequent) {
    return std::nullopt;
  }

  learners::CorrelationChainRule rule;
  rule.confidence = *confidence;
  rule.support = *support;
  rule.stage_window = *stage_window;
  rule.consequent = *consequent;
  for (std::string_view name : split(fields[5], ',')) {
    const auto id = taxonomy.find_by_name(name);
    if (!id) return std::nullopt;
    rule.chain.push_back(*id);
  }
  // Unlike the AR antecedent, the chain is ordered — no sort.
  if (rule.chain.empty()) return std::nullopt;
  return learners::Rule{learners::Rule::Body(std::move(rule))};
}

std::optional<learners::Rule> parse_neural_net(
    const std::vector<std::string_view>& fields) {
  if (fields.size() != 3) return std::nullopt;
  const auto threshold = parse_double(fields[1]);
  auto net = learners::NeuralNet::deserialize(fields[2]);
  if (!threshold || !net) return std::nullopt;
  learners::NeuralNetRule rule;
  rule.net = std::move(*net);
  rule.probability_threshold = *threshold;
  return learners::Rule{learners::Rule::Body(std::move(rule))};
}

}  // namespace

std::string rule_to_line(const learners::Rule& rule,
                         const bgl::Taxonomy& taxonomy) {
  struct Visitor {
    const bgl::Taxonomy& tax;

    std::string operator()(const learners::AssociationRule& r) const {
      std::string line = "AR|" + format_double(r.confidence) + '|' +
                         format_double(r.support) + '|' +
                         tax.category(r.consequent).name + '|';
      for (std::size_t i = 0; i < r.antecedent.size(); ++i) {
        if (i != 0) line += ',';
        line += tax.category(r.antecedent[i]).name;
      }
      return line;
    }
    std::string operator()(const learners::StatisticalRule& r) const {
      return "SR|" + std::to_string(r.k) + '|' + format_double(r.probability);
    }
    std::string operator()(const learners::DistributionRule& r) const {
      double p1 = 0.0, p2 = 0.0;
      struct Params {
        double& p1;
        double& p2;
        void operator()(const stats::Weibull& w) const {
          p1 = w.shape;
          p2 = w.scale;
        }
        void operator()(const stats::Exponential& e) const {
          p1 = e.rate;
          p2 = 0.0;
        }
        void operator()(const stats::LogNormal& l) const {
          p1 = l.mu;
          p2 = l.sigma;
        }
      };
      std::visit(Params{p1, p2}, r.model.variant());
      return "PD|" + std::string(r.model.family_name()) + '|' +
             format_double(p1) + '|' + format_double(p2) + '|' +
             format_double(r.cdf_threshold) + '|' +
             std::to_string(r.elapsed_trigger);
    }
    std::string operator()(const learners::DecisionTreeRule& r) const {
      return "DT|" + format_double(r.probability_threshold) + '|' +
             r.tree.serialize();
    }
    std::string operator()(const learners::NeuralNetRule& r) const {
      return "NN|" + format_double(r.probability_threshold) + '|' +
             r.net.serialize();
    }
    std::string operator()(const learners::CorrelationChainRule& r) const {
      std::string line = "CC|" + format_double(r.confidence) + '|' +
                         format_double(r.support) + '|' +
                         std::to_string(r.stage_window) + '|' +
                         tax.category(r.consequent).name + '|';
      for (std::size_t i = 0; i < r.chain.size(); ++i) {
        if (i != 0) line += ',';
        line += tax.category(r.chain[i]).name;
      }
      return line;
    }
  };
  return std::visit(Visitor{taxonomy}, rule.body());
}

std::optional<learners::Rule> rule_from_line(std::string_view line,
                                             const bgl::Taxonomy& taxonomy) {
  const auto fields = split(line, '|');
  if (fields.empty()) return std::nullopt;
  if (fields[0] == "AR") return parse_association(fields, taxonomy);
  if (fields[0] == "SR") return parse_statistical(fields);
  if (fields[0] == "PD") return parse_distribution(fields);
  if (fields[0] == "DT") return parse_decision_tree(fields);
  if (fields[0] == "NN") return parse_neural_net(fields);
  if (fields[0] == "CC") return parse_correlation(fields, taxonomy);
  return std::nullopt;
}

void write_rules(std::ostream& out, const KnowledgeRepository& repository,
                 const bgl::Taxonomy& taxonomy) {
  out << kHeaderV2 << '\n';
  for (const auto& stored : repository.rules()) {
    out << rule_to_line(stored.rule, taxonomy) << '\n';
  }
}

KnowledgeRepository read_rules(std::istream& in,
                               const bgl::Taxonomy& taxonomy) {
  KnowledgeRepository repository;
  std::string line;
  std::size_t line_number = 0;
  bool saw_header = false;
  while (std::getline(in, line)) {
    ++line_number;
    const std::string_view view = trim(line);
    if (view.empty()) continue;
    if (view.front() == '#') {
      if (view == kHeaderV1 || view == kHeaderV2) saw_header = true;
      continue;
    }
    if (!saw_header) {
      throw std::runtime_error("rules file: missing '# DML-RULES' header");
    }
    auto rule = rule_from_line(view, taxonomy);
    if (!rule) {
      throw std::runtime_error("rules file: malformed rule at line " +
                               std::to_string(line_number));
    }
    repository.add(std::move(*rule));
  }
  return repository;
}

}  // namespace dml::meta
