#include "meta/snapshot.hpp"

namespace dml::meta {

RepositorySnapshot empty_snapshot() {
  static const RepositorySnapshot instance =
      std::make_shared<const KnowledgeRepository>();
  return instance;
}

}  // namespace dml::meta
