// Text serialization of the knowledge repository, so a trained rule set
// can be shipped from the (offline, parallel) rule-generation host to
// the online predictor — the deployment split the paper describes in
// §5.2.4 ("the rule generation process can be conducted in parallel when
// the production system is in operation").
//
// Format: one rule per line, pipe-delimited, self-describing:
//   AR|<confidence>|<support>|<consequent-name>|<antecedent-name>,...
//   SR|<k>|<probability>
//   PD|<family>|<param1>|<param2>|<cdf_threshold>|<elapsed_trigger>
//   CC|<confidence>|<support>|<stage_window>|<consequent-name>|<stage>,...
//     (stages ordered, NOT sorted — chain order is the rule)
// with a header line `# DML-RULES v2` and '#' comments allowed.
// Version history: v1 lacked the CC line type; v1 files still read back
// (the reader accepts either header), and writers always emit the
// current version.
#pragma once

#include <istream>
#include <optional>
#include <ostream>
#include <string>
#include <string_view>

#include "meta/knowledge_repository.hpp"

namespace dml::meta {

/// Serializes one rule (without its id / training annotations).
std::string rule_to_line(const learners::Rule& rule,
                         const bgl::Taxonomy& taxonomy = bgl::taxonomy());

/// Parses one rule line; nullopt on malformed input or unknown category
/// names.
std::optional<learners::Rule> rule_from_line(
    std::string_view line, const bgl::Taxonomy& taxonomy = bgl::taxonomy());

/// Writes the whole repository (ids and training counts are not
/// persisted; they are re-derived by the reviser after loading).
void write_rules(std::ostream& out, const KnowledgeRepository& repository,
                 const bgl::Taxonomy& taxonomy = bgl::taxonomy());

/// Reads a repository; throws std::runtime_error with a line number on
/// malformed input.
KnowledgeRepository read_rules(std::istream& in,
                               const bgl::Taxonomy& taxonomy = bgl::taxonomy());

}  // namespace dml::meta
