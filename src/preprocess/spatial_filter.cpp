#include "preprocess/spatial_filter.hpp"

#include <functional>

namespace dml::preprocess {

std::optional<CategorizedRecord> SpatialFilter::push(
    const CategorizedRecord& record) {
  if (threshold_ <= 0) {
    ++passed_;
    return record;
  }
  const Key key{std::hash<std::string>{}(record.record.entry_data),
                record.record.job_id};
  const TimeSec t = record.record.event_time;
  auto [it, inserted] = last_seen_.try_emplace(key, t);
  if (!inserted) {
    if (t - it->second <= threshold_) {
      it->second = t;
      ++merged_;
      return std::nullopt;
    }
    it->second = t;
  }
  ++passed_;
  return record;
}

}  // namespace dml::preprocess
