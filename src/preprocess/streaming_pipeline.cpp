#include "preprocess/streaming_pipeline.hpp"

#include "common/failpoint.hpp"

namespace dml::preprocess {

StreamingPipeline::StreamingPipeline(DurationSec threshold,
                                     const bgl::Taxonomy& taxonomy)
    : categorizer_(taxonomy), temporal_(threshold), spatial_(threshold) {}

std::optional<bgl::Event> StreamingPipeline::push(
    const bgl::RasRecord& record) {
  ++stats_.raw_records;
  switch (common::failpoint(common::failpoints::kPreprocessPush)) {
    case common::FailAction::kDrop:
    case common::FailAction::kCorrupt:
      // A corrupt raw record would be rejected by the categorizer
      // anyway; both actions degrade to a counted drop here.
      ++stats_.dropped_by_failpoint;
      return std::nullopt;
    default:
      break;
  }
  auto categorized = categorizer_.categorize(record);
  if (!categorized) {
    ++stats_.unclassified;
    return std::nullopt;
  }
  auto after_temporal = temporal_.push(*categorized);
  if (!after_temporal) return std::nullopt;
  ++stats_.after_temporal;
  auto survivor = spatial_.push(*after_temporal);
  if (!survivor) return std::nullopt;

  ++stats_.unique_events;
  ++stats_.unique_per_facility[static_cast<std::size_t>(
      survivor->record.facility)];
  bgl::Event event;
  event.time = survivor->record.event_time;
  event.category = survivor->category;
  event.job_id = survivor->record.job_id;
  event.location = survivor->record.location;
  event.fatal = survivor->fatal;
  return event;
}

}  // namespace dml::preprocess
