// Spatial compression across locations (paper §3.2): "we remove those
// entries that are close to each other within a predefined time
// duration, with the same Entry Data and Job ID, but from different
// locations."  The surviving entry is the earliest reporter.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>

#include "common/types.hpp"
#include "preprocess/categorizer.hpp"

namespace dml::preprocess {

class SpatialFilter {
 public:
  /// threshold <= 0 disables compression.
  explicit SpatialFilter(DurationSec threshold) : threshold_(threshold) {}

  std::optional<CategorizedRecord> push(const CategorizedRecord& record);

  std::uint64_t passed() const { return passed_; }
  std::uint64_t merged() const { return merged_; }
  DurationSec threshold() const { return threshold_; }

 private:
  struct Key {
    std::uint64_t entry_hash;
    JobId job;
    friend bool operator==(const Key&, const Key&) = default;
  };
  struct KeyHash {
    std::size_t operator()(const Key& k) const {
      std::uint64_t z = k.entry_hash ^ (static_cast<std::uint64_t>(k.job)
                                        << 32);
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      return static_cast<std::size_t>(z ^ (z >> 31));
    }
  };

  DurationSec threshold_;
  std::unordered_map<Key, TimeSec, KeyHash> last_seen_;
  std::uint64_t passed_ = 0;
  std::uint64_t merged_ = 0;
};

}  // namespace dml::preprocess
