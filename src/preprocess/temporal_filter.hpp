// Temporal compression at a single location (paper §3.2): "events from
// the same location with identical values in the Job ID and Location
// fields are coalesced into a single entry, if reported within a
// predefined time duration."  We additionally key on the category so
// that distinct event types at one location never coalesce.
//
// Coalescing is gap-based (Hansen-Siewiorek tupling): a record extends
// the current tuple if it arrives within `threshold` of the previous
// record of the same key; the tuple is represented by its first record.
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>

#include "common/types.hpp"
#include "preprocess/categorizer.hpp"

namespace dml::preprocess {

class TemporalFilter {
 public:
  /// threshold <= 0 disables compression (every record passes).
  explicit TemporalFilter(DurationSec threshold) : threshold_(threshold) {}

  /// Returns the record if it starts a new tuple, nullopt if it is a
  /// duplicate of the running tuple.  Records must arrive in
  /// non-decreasing time order per key.
  std::optional<CategorizedRecord> push(const CategorizedRecord& record);

  std::uint64_t passed() const { return passed_; }
  std::uint64_t merged() const { return merged_; }
  DurationSec threshold() const { return threshold_; }

 private:
  struct Key {
    std::uint64_t bits;
    friend bool operator==(const Key&, const Key&) = default;
  };
  struct KeyHash {
    std::size_t operator()(const Key& k) const {
      std::uint64_t z = k.bits + 0x9e3779b97f4a7c15ULL;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      return static_cast<std::size_t>(z ^ (z >> 31));
    }
  };

  static Key make_key(const CategorizedRecord& record);

  DurationSec threshold_;
  std::unordered_map<Key, TimeSec, KeyHash> last_seen_;
  std::uint64_t passed_ = 0;
  std::uint64_t merged_ = 0;
};

}  // namespace dml::preprocess
