// The full data-preprocessing pipeline of Figure 1: categorizer ->
// temporal filter -> spatial filter -> unique categorized events.
// Implements logio::RecordSink so a generator or a log parser can stream
// straight into it with bounded memory.
#pragma once

#include <vector>

#include "logio/event_store.hpp"
#include "logio/record_sink.hpp"
#include "preprocess/streaming_pipeline.hpp"

namespace dml::preprocess {

class PreprocessPipeline final : public logio::RecordSink {
 public:
  /// Both filters use the same threshold, per the paper's single
  /// filtering-threshold sweep (Table 4); 300 s is the production value.
  /// With collect_events == false only statistics are kept (constant
  /// memory) — the mode the Table 4 sweep uses.
  explicit PreprocessPipeline(DurationSec threshold,
                              const bgl::Taxonomy& taxonomy = bgl::taxonomy(),
                              bool collect_events = true);

  void consume(const bgl::RasRecord& record) override;

  const PipelineStats& stats() const { return streaming_.stats(); }
  const Categorizer::Stats& categorizer_stats() const {
    return streaming_.categorizer_stats();
  }

  /// Unique events accumulated so far (time-ordered as pushed).
  const std::vector<bgl::Event>& events() const { return events_; }

  /// Moves the accumulated events into an EventStore.
  logio::EventStore take_store();

 private:
  StreamingPipeline streaming_;
  bool collect_events_;
  std::vector<bgl::Event> events_;
};

/// Runs the same stream through pipelines at several thresholds at once
/// (the Table 4 sweep) without retaining records.
class ThresholdSweep final : public logio::RecordSink {
 public:
  explicit ThresholdSweep(std::vector<DurationSec> thresholds);

  void consume(const bgl::RasRecord& record) override;

  const std::vector<DurationSec>& thresholds() const { return thresholds_; }
  const PipelineStats& stats_at(std::size_t i) const;

  /// The paper's iterative threshold choice (§3.2): walk the candidate
  /// thresholds in increasing order and stop at the first whose unique
  /// count shrinks by less than `epsilon` (relative) versus the previous
  /// candidate.  Returns the chosen threshold.
  DurationSec select_threshold(double epsilon = 0.05) const;

 private:
  std::vector<DurationSec> thresholds_;
  std::vector<PreprocessPipeline> pipelines_;
};

}  // namespace dml::preprocess
