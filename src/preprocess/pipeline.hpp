// The full data-preprocessing pipeline of Figure 1: categorizer ->
// temporal filter -> spatial filter -> unique categorized events.
// Implements logio::RecordSink so a generator or a log parser can stream
// straight into it with bounded memory.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "logio/event_store.hpp"
#include "logio/record_sink.hpp"
#include "preprocess/categorizer.hpp"
#include "preprocess/spatial_filter.hpp"
#include "preprocess/temporal_filter.hpp"

namespace dml::preprocess {

struct PipelineStats {
  std::uint64_t raw_records = 0;
  std::uint64_t unclassified = 0;
  std::uint64_t after_temporal = 0;
  std::uint64_t unique_events = 0;
  /// Unique events per facility (one Table 4 column).
  std::array<std::uint64_t, bgl::kNumFacilities> unique_per_facility{};

  double compression_rate() const {
    if (raw_records == 0) return 0.0;
    return 1.0 - static_cast<double>(unique_events) /
                     static_cast<double>(raw_records);
  }
};

class PreprocessPipeline final : public logio::RecordSink {
 public:
  /// Both filters use the same threshold, per the paper's single
  /// filtering-threshold sweep (Table 4); 300 s is the production value.
  /// With collect_events == false only statistics are kept (constant
  /// memory) — the mode the Table 4 sweep uses.
  explicit PreprocessPipeline(DurationSec threshold,
                              const bgl::Taxonomy& taxonomy = bgl::taxonomy(),
                              bool collect_events = true);

  void consume(const bgl::RasRecord& record) override;

  const PipelineStats& stats() const { return stats_; }
  const Categorizer::Stats& categorizer_stats() const {
    return categorizer_.stats();
  }

  /// Unique events accumulated so far (time-ordered as pushed).
  const std::vector<bgl::Event>& events() const { return events_; }

  /// Moves the accumulated events into an EventStore.
  logio::EventStore take_store();

 private:
  Categorizer categorizer_;
  TemporalFilter temporal_;
  SpatialFilter spatial_;
  PipelineStats stats_;
  bool collect_events_;
  std::vector<bgl::Event> events_;
};

/// Runs the same stream through pipelines at several thresholds at once
/// (the Table 4 sweep) without retaining records.
class ThresholdSweep final : public logio::RecordSink {
 public:
  explicit ThresholdSweep(std::vector<DurationSec> thresholds);

  void consume(const bgl::RasRecord& record) override;

  const std::vector<DurationSec>& thresholds() const { return thresholds_; }
  const PipelineStats& stats_at(std::size_t i) const;

  /// The paper's iterative threshold choice (§3.2): walk the candidate
  /// thresholds in increasing order and stop at the first whose unique
  /// count shrinks by less than `epsilon` (relative) versus the previous
  /// candidate.  Returns the chosen threshold.
  DurationSec select_threshold(double epsilon = 0.05) const;

 private:
  std::vector<DurationSec> thresholds_;
  std::vector<PreprocessPipeline> pipelines_;
};

}  // namespace dml::preprocess
