#include "preprocess/categorizer.hpp"

namespace dml::preprocess {

std::optional<CategorizedRecord> Categorizer::categorize(
    const bgl::RasRecord& record) {
  const auto category = taxonomy_->classify(record.facility, record.severity,
                                            record.entry_data);
  if (!category) {
    ++stats_.unclassified;
    return std::nullopt;
  }
  ++stats_.classified;
  const auto& cat = taxonomy_->category(*category);
  if (record.is_fatal_severity() && !cat.fatal) {
    ++stats_.demoted_nominal_fatal;
  }
  CategorizedRecord out;
  out.record = record;
  out.category = *category;
  out.fatal = cat.fatal;
  return out;
}

}  // namespace dml::preprocess
