#include "preprocess/pipeline.hpp"

#include <stdexcept>

namespace dml::preprocess {

PreprocessPipeline::PreprocessPipeline(DurationSec threshold,
                                       const bgl::Taxonomy& taxonomy,
                                       bool collect_events)
    : streaming_(threshold, taxonomy), collect_events_(collect_events) {}

void PreprocessPipeline::consume(const bgl::RasRecord& record) {
  auto event = streaming_.push(record);
  if (event && collect_events_) events_.push_back(*event);
}

logio::EventStore PreprocessPipeline::take_store() {
  return logio::EventStore(std::move(events_));
}

ThresholdSweep::ThresholdSweep(std::vector<DurationSec> thresholds)
    : thresholds_(std::move(thresholds)) {
  if (thresholds_.empty()) {
    throw std::invalid_argument("ThresholdSweep: no thresholds");
  }
  pipelines_.reserve(thresholds_.size());
  for (DurationSec t : thresholds_) {
    pipelines_.emplace_back(t, bgl::taxonomy(), /*collect_events=*/false);
  }
}

void ThresholdSweep::consume(const bgl::RasRecord& record) {
  for (auto& pipeline : pipelines_) pipeline.consume(record);
}

const PipelineStats& ThresholdSweep::stats_at(std::size_t i) const {
  return pipelines_.at(i).stats();
}

DurationSec ThresholdSweep::select_threshold(double epsilon) const {
  for (std::size_t i = 1; i < pipelines_.size(); ++i) {
    const auto prev = static_cast<double>(stats_at(i - 1).unique_events);
    const auto curr = static_cast<double>(stats_at(i).unique_events);
    if (prev <= 0.0) return thresholds_[i - 1];
    if ((prev - curr) / prev < epsilon) return thresholds_[i];
  }
  return thresholds_.back();
}

}  // namespace dml::preprocess
