// Push-based core of the Figure 1 preprocessing chain: categorizer ->
// temporal filter -> spatial filter, one raw RAS record in, at most one
// unique categorized event out.  This is the single implementation of
// the chain; the batch pipeline (preprocess::PreprocessPipeline), the
// online engine (online::OnlineEngine) and the sharded serving front-end
// (online::ShardedEngine) all consume it rather than re-inlining the
// three stages.
#pragma once

#include <array>
#include <cstdint>
#include <optional>

#include "bgl/record.hpp"
#include "preprocess/categorizer.hpp"
#include "preprocess/spatial_filter.hpp"
#include "preprocess/temporal_filter.hpp"

namespace dml::preprocess {

struct PipelineStats {
  std::uint64_t raw_records = 0;
  std::uint64_t unclassified = 0;
  std::uint64_t after_temporal = 0;
  std::uint64_t unique_events = 0;
  /// Records swallowed by an armed `preprocess.push` drop/corrupt
  /// failpoint (fault injection; see common/failpoint.hpp).
  std::uint64_t dropped_by_failpoint = 0;
  /// Unique events per facility (one Table 4 column).
  std::array<std::uint64_t, bgl::kNumFacilities> unique_per_facility{};

  double compression_rate() const {
    if (raw_records == 0) return 0.0;
    return 1.0 - static_cast<double>(unique_events) /
                     static_cast<double>(raw_records);
  }
};

class StreamingPipeline {
 public:
  /// Both filters use the same threshold, per the paper's single
  /// filtering-threshold sweep (Table 4); 300 s is the production value.
  explicit StreamingPipeline(DurationSec threshold,
                             const bgl::Taxonomy& taxonomy = bgl::taxonomy());

  /// Feeds one raw record through the chain.  Returns the surviving
  /// unique event, or nullopt when the record is unclassified or
  /// swallowed by a filter.  Records must arrive in time order.
  std::optional<bgl::Event> push(const bgl::RasRecord& record);

  const PipelineStats& stats() const { return stats_; }
  const Categorizer::Stats& categorizer_stats() const {
    return categorizer_.stats();
  }

 private:
  Categorizer categorizer_;
  TemporalFilter temporal_;
  SpatialFilter spatial_;
  PipelineStats stats_;
};

}  // namespace dml::preprocess
