// Event categorizer (paper §3.1): maps each raw record onto one of the
// 219 low-level categories by facility, severity, and ENTRY DATA pattern.
// The categorizer is also where "fake" fatal events are demoted: records
// whose severity claims FATAL/FAILURE but whose category administrators
// excluded from the failure list come out with fatal == false.
#pragma once

#include <cstdint>
#include <optional>

#include "bgl/record.hpp"
#include "bgl/taxonomy.hpp"

namespace dml::preprocess {

/// A raw record annotated with its category.
struct CategorizedRecord {
  bgl::RasRecord record;
  CategoryId category = kInvalidCategory;
  /// True failure per the cleaned taxonomy (nominally-fatal demoted).
  bool fatal = false;
};

class Categorizer {
 public:
  explicit Categorizer(const bgl::Taxonomy& taxonomy = bgl::taxonomy())
      : taxonomy_(&taxonomy) {}

  /// nullopt when no category matches (counted in stats).
  std::optional<CategorizedRecord> categorize(const bgl::RasRecord& record);

  struct Stats {
    std::uint64_t classified = 0;
    std::uint64_t unclassified = 0;
    /// Records with FATAL/FAILURE severity demoted to non-fatal.
    std::uint64_t demoted_nominal_fatal = 0;
  };
  const Stats& stats() const { return stats_; }

  const bgl::Taxonomy& taxonomy() const { return *taxonomy_; }

 private:
  const bgl::Taxonomy* taxonomy_;
  Stats stats_;
};

}  // namespace dml::preprocess
