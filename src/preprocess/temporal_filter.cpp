#include "preprocess/temporal_filter.hpp"

namespace dml::preprocess {

TemporalFilter::Key TemporalFilter::make_key(const CategorizedRecord& r) {
  // location (32) | job (hashed into 16) | category (16)
  const std::uint64_t loc = r.record.location.packed();
  const std::uint64_t job = r.record.job_id * 0x9E37ULL;
  return Key{(loc << 32) ^ (job << 16) ^ r.category};
}

std::optional<CategorizedRecord> TemporalFilter::push(
    const CategorizedRecord& record) {
  if (threshold_ <= 0) {
    ++passed_;
    return record;
  }
  const Key key = make_key(record);
  const TimeSec t = record.record.event_time;
  auto [it, inserted] = last_seen_.try_emplace(key, t);
  if (!inserted) {
    if (t - it->second <= threshold_) {
      it->second = t;  // gap-based: the tuple window slides forward
      ++merged_;
      return std::nullopt;
    }
    it->second = t;
  }
  ++passed_;
  return record;
}

}  // namespace dml::preprocess
