// Common interface of the three predictive methods.  "Other base methods
// can be easily incorporated" (paper §4.1): a new learner only needs to
// produce Rules; the meta-learner, reviser, and predictor are agnostic.
#pragma once

#include <memory>
#include <span>
#include <vector>

#include "bgl/record.hpp"
#include "common/types.hpp"
#include "learners/rule.hpp"

namespace dml::learners {

class BaseLearner {
 public:
  virtual ~BaseLearner() = default;

  virtual RuleSource source() const = 0;

  /// Learns candidate rules from a time-ordered training span using the
  /// given rule-generation window Wp.
  virtual std::vector<Rule> learn(std::span<const bgl::Event> training,
                                  DurationSec window) const = 0;
};

}  // namespace dml::learners
