// Association-rule base learner (paper §4.1): mines causal correlations
// between non-fatal and fatal events as rules {e1..ek} -> f with support
// and confidence above low thresholds (0.01 / 0.1 by default — "low
// values are chosen for the purpose of capturing infrequent events; the
// rules that are not good will be removed by the reviser").
#pragma once

#include "learners/apriori.hpp"
#include "learners/base_learner.hpp"

namespace dml::learners {

struct AssociationConfig {
  double min_support = 0.01;
  /// Absolute floor on the support *count*: with a short training set,
  /// the relative threshold alone admits patterns seen two or three
  /// times, and chance co-occurrences explode combinatorially.
  std::uint32_t min_support_count = 5;
  double min_confidence = 0.1;
  /// Antecedent size bounds.  Single-event antecedents fire on every
  /// stray occurrence of a common warning category and add little over
  /// chance; the paper's reported rules pair two or more precursors.
  std::size_t min_antecedent = 2;
  std::size_t max_antecedent = 4;
};

class AssociationLearner final : public BaseLearner {
 public:
  explicit AssociationLearner(AssociationConfig config = {})
      : config_(config) {}

  RuleSource source() const override { return RuleSource::kAssociation; }

  std::vector<Rule> learn(std::span<const bgl::Event> training,
                          DurationSec window) const override;

  const AssociationConfig& config() const { return config_; }

 private:
  AssociationConfig config_;
};

}  // namespace dml::learners
