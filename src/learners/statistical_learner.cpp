#include "learners/statistical_learner.hpp"

#include <algorithm>

namespace dml::learners {

std::vector<StatisticalLearner::Estimate> StatisticalLearner::estimate(
    std::span<const bgl::Event> training, DurationSec window, int max_k) {
  std::vector<TimeSec> fatals;
  for (const auto& e : training) {
    if (e.fatal) fatals.push_back(e.time);
  }

  std::vector<Estimate> estimates(static_cast<std::size_t>(max_k));
  for (int k = 1; k <= max_k; ++k) {
    estimates[static_cast<std::size_t>(k - 1)].k = k;
  }

  // For each fatal event i: c = fatals within (t_i - window, t_i]
  // (including itself); the occurrence "triggers" every rule with k <= c,
  // and the trigger is "followed" if another fatal lands in
  // (t_i, t_i + window].
  std::size_t lo = 0;
  for (std::size_t i = 0; i < fatals.size(); ++i) {
    while (lo <= i && fatals[lo] <= fatals[i] - window) ++lo;
    const int c = static_cast<int>(i - lo + 1);
    const bool followed =
        i + 1 < fatals.size() && fatals[i + 1] <= fatals[i] + window;
    for (int k = 1; k <= std::min(c, max_k); ++k) {
      auto& est = estimates[static_cast<std::size_t>(k - 1)];
      ++est.triggers;
      if (followed) ++est.followed;
    }
  }
  return estimates;
}

std::vector<Rule> StatisticalLearner::learn(
    std::span<const bgl::Event> training, DurationSec window) const {
  std::vector<Rule> rules;
  const auto estimates = estimate(training, window, config_.max_k);
  for (const auto& est : estimates) {
    if (est.triggers < config_.min_samples) continue;
    if (est.probability() < config_.min_probability) continue;
    StatisticalRule rule;
    rule.k = est.k;
    rule.probability = est.probability();
    rules.emplace_back(Rule::Body(rule));
  }
  // Keep only the smallest qualifying k: any larger-k rule fires strictly
  // less often and predicts the same thing.
  if (rules.size() > 1) rules.resize(1);
  return rules;
}

}  // namespace dml::learners
