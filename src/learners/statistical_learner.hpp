// Statistical-rule base learner (paper §4.1): estimates "how often and
// with what probability will the occurrence of one failure influence
// subsequent failures".  For each k it measures, over the training set,
// P(another failure within Wp | k failures observed within Wp) and emits
// a rule when the probability clears the threshold (paper default 0.8;
// e.g. "if four failures occur within 300 seconds, the probability of
// another failure is 99%").
#pragma once

#include "learners/base_learner.hpp"

namespace dml::learners {

struct StatisticalConfig {
  double min_probability = 0.8;
  /// Largest k examined.
  int max_k = 8;
  /// Minimum trigger occurrences in training for the estimate to count.
  std::uint32_t min_samples = 5;
};

class StatisticalLearner final : public BaseLearner {
 public:
  explicit StatisticalLearner(StatisticalConfig config = {})
      : config_(config) {}

  RuleSource source() const override { return RuleSource::kStatistical; }

  std::vector<Rule> learn(std::span<const bgl::Event> training,
                          DurationSec window) const override;

  const StatisticalConfig& config() const { return config_; }

  /// The estimated P(another within `window` | k fatals within `window`)
  /// together with its sample count — exposed for tests/benches.
  struct Estimate {
    int k = 0;
    std::uint32_t triggers = 0;
    std::uint32_t followed = 0;
    double probability() const {
      return triggers == 0 ? 0.0
                           : static_cast<double>(followed) /
                                 static_cast<double>(triggers);
    }
  };
  static std::vector<Estimate> estimate(std::span<const bgl::Event> training,
                                        DurationSec window, int max_k);

 private:
  StatisticalConfig config_;
};

}  // namespace dml::learners
