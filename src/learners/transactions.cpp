#include "learners/transactions.hpp"

#include <algorithm>

namespace dml::learners {
namespace {

/// Sorted unique non-fatal categories among events[lo, hi) that fall in
/// [begin, end).
std::vector<CategoryId> collect_items(std::span<const bgl::Event> events,
                                      std::size_t lo, std::size_t hi,
                                      TimeSec begin, TimeSec end) {
  std::vector<CategoryId> items;
  for (std::size_t i = lo; i < hi; ++i) {
    const auto& e = events[i];
    if (e.time < begin || e.time >= end || e.fatal) continue;
    items.push_back(e.category);
  }
  std::sort(items.begin(), items.end());
  items.erase(std::unique(items.begin(), items.end()), items.end());
  return items;
}

/// First index with events[i].time >= t (events are time-ordered).
std::size_t lower_index(std::span<const bgl::Event> events, TimeSec t) {
  const auto it = std::lower_bound(
      events.begin(), events.end(), t,
      [](const bgl::Event& e, TimeSec value) { return e.time < value; });
  return static_cast<std::size_t>(it - events.begin());
}

}  // namespace

std::vector<Transaction> build_failure_transactions(
    std::span<const bgl::Event> events, DurationSec window) {
  std::vector<Transaction> transactions;
  for (std::size_t i = 0; i < events.size(); ++i) {
    if (!events[i].fatal) continue;
    const TimeSec t = events[i].time;
    const std::size_t lo = lower_index(events, t - window);
    Transaction tx;
    tx.items = collect_items(events, lo, i, t - window, t);
    tx.consequent = events[i].category;
    tx.fatal_time = t;
    transactions.push_back(std::move(tx));
  }
  return transactions;
}

std::vector<Transaction> collapse_cascade_transactions(
    std::vector<Transaction> transactions, DurationSec window) {
  std::vector<Transaction> collapsed;
  bool have_prev = false;
  TimeSec prev_time = 0;
  for (auto& tx : transactions) {
    const bool same_burst = have_prev && tx.fatal_time - prev_time <= window;
    prev_time = tx.fatal_time;
    have_prev = true;
    if (same_burst) continue;
    collapsed.push_back(std::move(tx));
  }
  return collapsed;
}

std::vector<std::vector<CategoryId>> sample_negative_windows(
    std::span<const bgl::Event> events, DurationSec window,
    DurationSec stride) {
  std::vector<std::vector<CategoryId>> windows;
  if (events.empty() || stride <= 0) return windows;
  const TimeSec first = events.front().time;
  const TimeSec last = events.back().time;
  std::size_t lo = 0;
  for (TimeSec begin = first; begin + window <= last; begin += stride) {
    const TimeSec end = begin + window;
    while (lo < events.size() && events[lo].time < begin) ++lo;
    std::size_t hi = lo;
    bool has_fatal = false;
    std::vector<CategoryId> items;
    while (hi < events.size() && events[hi].time < end) {
      if (events[hi].fatal) {
        has_fatal = true;
      } else {
        items.push_back(events[hi].category);
      }
      ++hi;
    }
    if (has_fatal || items.empty()) continue;
    std::sort(items.begin(), items.end());
    items.erase(std::unique(items.begin(), items.end()), items.end());
    windows.push_back(std::move(items));
  }
  return windows;
}

}  // namespace dml::learners
