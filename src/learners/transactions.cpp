#include "learners/transactions.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace dml::learners {
namespace {

/// Sorted unique non-fatal categories among events[lo, hi) that fall in
/// [begin, end).
std::vector<CategoryId> collect_items(std::span<const bgl::Event> events,
                                      std::size_t lo, std::size_t hi,
                                      TimeSec begin, TimeSec end) {
  std::vector<CategoryId> items;
  for (std::size_t i = lo; i < hi; ++i) {
    const auto& e = events[i];
    if (e.time < begin || e.time >= end || e.fatal) continue;
    items.push_back(e.category);
  }
  std::sort(items.begin(), items.end());
  items.erase(std::unique(items.begin(), items.end()), items.end());
  return items;
}

/// First index with events[i].time >= t (events are time-ordered).
std::size_t lower_index(std::span<const bgl::Event> events, TimeSec t) {
  const auto it = std::lower_bound(
      events.begin(), events.end(), t,
      [](const bgl::Event& e, TimeSec value) { return e.time < value; });
  return static_cast<std::size_t>(it - events.begin());
}

}  // namespace

std::vector<Transaction> build_failure_transactions(
    std::span<const bgl::Event> events, DurationSec window) {
  std::vector<Transaction> transactions;
  for (std::size_t i = 0; i < events.size(); ++i) {
    if (!events[i].fatal) continue;
    const TimeSec t = events[i].time;
    const std::size_t lo = lower_index(events, t - window);
    Transaction tx;
    tx.items = collect_items(events, lo, i, t - window, t);
    tx.consequent = events[i].category;
    tx.fatal_time = t;
    transactions.push_back(std::move(tx));
  }
  return transactions;
}

std::vector<Transaction> collapse_cascade_transactions(
    std::vector<Transaction> transactions, DurationSec window) {
  std::vector<Transaction> collapsed;
  bool have_prev = false;
  TimeSec prev_time = 0;
  for (auto& tx : transactions) {
    const bool same_burst = have_prev && tx.fatal_time - prev_time <= window;
    prev_time = tx.fatal_time;
    have_prev = true;
    if (same_burst) continue;
    collapsed.push_back(std::move(tx));
  }
  return collapsed;
}

std::vector<std::vector<CategoryId>> sample_negative_windows(
    std::span<const bgl::Event> events, DurationSec window,
    DurationSec stride) {
  std::vector<std::vector<CategoryId>> windows;
  if (events.empty() || stride <= 0) return windows;
  // The incremental enter/leave sweep is only sound over a time-ordered
  // span (each event must enter and leave exactly once).
  DML_DCHECK(std::is_sorted(events.begin(), events.end(),
                            [](const bgl::Event& a, const bgl::Event& b) {
                              return a.time < b.time;
                            }));
  const TimeSec first = events.front().time;
  const TimeSec last = events.back().time;
  // Sliding state for [begin, begin + window): per-category counts of the
  // non-fatal events inside the window, the sorted set of distinct
  // non-fatal categories, and a fatal counter.  `hi` chases the window's
  // end and `lo` its start; each event enters and leaves exactly once
  // across the whole sweep, and emitting a window is a copy of `present`
  // rather than a rescan of anything.
  std::vector<std::uint32_t> counts;
  std::vector<CategoryId> present;
  std::size_t fatals = 0;
  std::size_t lo = 0;
  std::size_t hi = 0;
  for (TimeSec begin = first; begin + window <= last; begin += stride) {
    const TimeSec end = begin + window;
    while (hi < events.size() && events[hi].time < end) {
      const auto& e = events[hi++];
      if (e.fatal) {
        ++fatals;
        continue;
      }
      if (e.category >= counts.size()) counts.resize(e.category + 1, 0);
      if (counts[e.category]++ == 0) {
        present.insert(
            std::lower_bound(present.begin(), present.end(), e.category),
            e.category);
      }
    }
    while (lo < hi && events[lo].time < begin) {
      const auto& e = events[lo++];
      if (e.fatal) {
        --fatals;
        continue;
      }
      if (--counts[e.category] == 0) {
        present.erase(
            std::lower_bound(present.begin(), present.end(), e.category));
      }
    }
    if (fatals > 0 || present.empty()) continue;
    windows.push_back(present);
  }
  return windows;
}

DenseCategoryMap build_dense_category_map(
    std::span<const std::vector<CategoryId>> transactions) {
  DenseCategoryMap map;
  CategoryId max_category = 0;
  bool any = false;
  for (const auto& tx : transactions) {
    if (tx.empty()) continue;
    // Input contract: each transaction is a sorted unique item list —
    // the `back() is max` shortcut and the miner's lexicographic
    // itemset order both depend on it.
    DML_DCHECK(std::is_sorted(tx.begin(), tx.end()));
    DML_DCHECK(std::adjacent_find(tx.begin(), tx.end()) == tx.end());
    any = true;
    max_category = std::max(max_category, tx.back());  // sorted: back is max
  }
  if (!any) return map;
  std::vector<bool> present(static_cast<std::size_t>(max_category) + 1, false);
  for (const auto& tx : transactions) {
    for (CategoryId item : tx) present[item] = true;
  }
  map.to_dense.assign(present.size(), kInvalidCategory);
  for (std::size_t c = 0; c < present.size(); ++c) {
    if (present[c]) {
      map.to_dense[c] = static_cast<CategoryId>(map.to_original.size());
      map.to_original.push_back(static_cast<CategoryId>(c));
    }
  }
  return map;
}

TransactionBitsets encode_transaction_bitsets(
    std::span<const std::vector<CategoryId>> transactions,
    const DenseCategoryMap& map) {
  TransactionBitsets bits;
  bits.words_per_row = (map.size() + 63) / 64;
  if (bits.words_per_row == 0) return bits;
  bits.words.assign(transactions.size() * bits.words_per_row, 0);
  for (std::size_t t = 0; t < transactions.size(); ++t) {
    std::uint64_t* row = bits.words.data() + t * bits.words_per_row;
    for (CategoryId item : transactions[t]) {
      const CategoryId d = map.dense_of(item);
      if (d == kInvalidCategory) continue;
      // Dense ids index fixed-width rows; one out-of-range id would
      // corrupt a neighbouring transaction's bits.
      DML_DCHECK(d < map.size());
      DML_DCHECK((d >> 6) < bits.words_per_row);
      row[d >> 6] |= std::uint64_t{1} << (d & 63);
    }
  }
  return bits;
}

}  // namespace dml::learners
