#include "learners/association_learner.hpp"

#include <algorithm>
#include <map>

#include "learners/transactions.hpp"

namespace dml::learners {

std::vector<Rule> AssociationLearner::learn(
    std::span<const bgl::Event> training, DurationSec window) const {
  std::vector<Rule> rules;
  const auto transactions = collapse_cascade_transactions(
      build_failure_transactions(training, window), window);
  if (transactions.empty()) return rules;
  const auto total = static_cast<double>(transactions.size());

  // Mine frequent antecedent itemsets over all event sets.
  std::vector<Itemset> itemsets;
  itemsets.reserve(transactions.size());
  for (const auto& tx : transactions) itemsets.push_back(tx.items);

  AprioriConfig apriori;
  apriori.min_support =
      std::max(config_.min_support,
               static_cast<double>(config_.min_support_count) / total);
  apriori.max_items = config_.max_antecedent;
  const auto frequent = mine_frequent_itemsets(itemsets, apriori);

  // Rule extraction reuses the miner's dense bitset layout: one subset
  // test per (frequent itemset, transaction) is a few word-wise ANDs.
  const auto dense = build_dense_category_map(itemsets);
  const auto bits = encode_transaction_bitsets(itemsets, dense);
  std::vector<std::uint64_t> mask(bits.words_per_row);

  // For each frequent X and fatal f: support(X -> f) = |tx containing X
  // with consequent f| / N, confidence = that count / |tx containing X|.
  for (const auto& fi : frequent) {
    if (fi.items.size() < config_.min_antecedent) continue;
    std::fill(mask.begin(), mask.end(), 0);
    for (CategoryId item : fi.items) {
      const CategoryId d = dense.dense_of(item);
      mask[d >> 6] |= std::uint64_t{1} << (d & 63);
    }
    std::map<CategoryId, std::uint32_t> per_consequent;
    for (std::size_t t = 0; t < transactions.size(); ++t) {
      if (bitset_contains(bits.row(t), mask.data(), bits.words_per_row)) {
        ++per_consequent[transactions[t].consequent];
      }
    }
    for (const auto& [consequent, count] : per_consequent) {
      const double support = static_cast<double>(count) / total;
      const double confidence =
          static_cast<double>(count) / static_cast<double>(fi.count);
      if (support < config_.min_support ||
          count < config_.min_support_count ||
          confidence < config_.min_confidence) {
        continue;
      }
      AssociationRule rule;
      rule.antecedent = fi.items;
      rule.consequent = consequent;
      rule.support = support;
      rule.confidence = confidence;
      rules.emplace_back(Rule::Body(std::move(rule)));
    }
  }

  // Drop rules subsumed by a shorter antecedent predicting the same
  // consequent with at least the same confidence: the short rule fires
  // whenever the long one would.
  std::vector<Rule> kept;
  for (const auto& candidate : rules) {
    const auto* cr = candidate.as_association();
    const bool subsumed = std::any_of(
        rules.begin(), rules.end(), [&](const Rule& other) {
          const auto* orule = other.as_association();
          return orule != cr && orule->consequent == cr->consequent &&
                 orule->antecedent.size() < cr->antecedent.size() &&
                 orule->confidence >= cr->confidence &&
                 contains_sorted(cr->antecedent, orule->antecedent);
        });
    if (!subsumed) kept.push_back(candidate);
  }
  return kept;
}

}  // namespace dml::learners
