#include "learners/neural_net_learner.hpp"

namespace dml::learners {

std::vector<Rule> NeuralNetLearner::learn(
    std::span<const bgl::Event> training, DurationSec window) const {
  std::vector<Rule> rules;
  const auto samples =
      build_labelled_samples(training, window, config_.max_negative_ratio);
  std::size_t positives = 0;
  for (const auto& sample : samples) positives += sample.positive ? 1 : 0;
  if (positives < config_.min_positive_samples) return rules;
  if (positives == samples.size()) return rules;  // degenerate: all positive

  NeuralNetRule rule;
  rule.net = NeuralNet::fit(samples, config_.net);
  rule.probability_threshold = config_.probability_threshold;
  rules.emplace_back(Rule::Body(std::move(rule)));
  return rules;
}

}  // namespace dml::learners
