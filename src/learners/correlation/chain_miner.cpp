#include "learners/correlation/chain_miner.hpp"

#include <algorithm>
#include <cstdint>
#include <string>

namespace dml::learners::correlation {

namespace {

struct Miner {
  const EventGraph& graph;
  const ChainMinerConfig& config;
  CategoryId fatal = kInvalidCategory;
  /// Chain under construction, last stage first (the walk is backward).
  std::vector<CategoryId> reversed;
  std::vector<CorrelationChainRule> out;

  /// Top-k walkable predecessors of `head`, re-sorted ascending by id so
  /// sibling branches are explored in a deterministic order.
  std::vector<EventGraph::Predecessor> frontier(CategoryId head) const {
    std::vector<EventGraph::Predecessor> preds =
        graph.predecessors(head, config.min_edge_confidence);
    if (preds.size() > config.max_predecessors) {
      std::partial_sort(preds.begin(),
                        preds.begin() + config.max_predecessors, preds.end(),
                        [](const auto& a, const auto& b) {
                          if (a.confidence != b.confidence) {
                            return a.confidence > b.confidence;
                          }
                          return a.category < b.category;
                        });
      preds.resize(config.max_predecessors);
      std::sort(preds.begin(), preds.end(),
                [](const auto& a, const auto& b) {
                  return a.category < b.category;
                });
    }
    return preds;
  }

  void emit(double confidence, std::uint32_t min_count) {
    if (reversed.size() < config.min_chain_length) return;
    CorrelationChainRule rule;
    rule.chain.assign(reversed.rbegin(), reversed.rend());
    rule.consequent = fatal;
    rule.confidence = confidence;
    const std::uint32_t fatal_occ = graph.fatal_occurrences(fatal);
    rule.support =
        std::min(1.0, static_cast<double>(min_count) /
                          std::max<std::uint32_t>(1, fatal_occ));
    rule.stage_window = graph.config().window;
    out.push_back(std::move(rule));
  }

  void extend(CategoryId head, double confidence, std::uint32_t min_count) {
    bool extended = false;
    if (reversed.size() < config.max_chain_length) {
      for (const EventGraph::Predecessor& pred : frontier(head)) {
        const double product = confidence * pred.confidence;
        if (product < config.min_chain_confidence) continue;
        if (std::find(reversed.begin(), reversed.end(), pred.category) !=
            reversed.end()) {
          continue;  // no cycles
        }
        extended = true;
        reversed.push_back(pred.category);
        extend(pred.category, product,
               std::min(min_count, pred.count));
        reversed.pop_back();
      }
    }
    if (!extended) emit(confidence, min_count);
  }
};

}  // namespace

std::vector<Rule> mine_chains(const EventGraph& graph,
                              const ChainMinerConfig& config) {
  std::vector<Rule> rules;
  for (CategoryId fatal : graph.fatal_categories()) {
    Miner miner{graph, config, fatal, {}, {}};
    for (const EventGraph::Predecessor& pred :
         miner.frontier(fatal)) {
      if (pred.confidence < config.min_chain_confidence) continue;
      miner.reversed.push_back(pred.category);
      miner.extend(pred.category, pred.confidence, pred.count);
      miner.reversed.pop_back();
    }
    std::sort(miner.out.begin(), miner.out.end(),
              [](const CorrelationChainRule& a,
                 const CorrelationChainRule& b) {
                if (a.confidence != b.confidence) {
                  return a.confidence > b.confidence;
                }
                return a.chain < b.chain;
              });
    if (miner.out.size() > config.max_chains_per_fatal) {
      miner.out.resize(config.max_chains_per_fatal);
    }
    for (CorrelationChainRule& chain : miner.out) {
      rules.emplace_back(learners::Rule::Body{std::move(chain)});
    }
  }
  return rules;
}

}  // namespace dml::learners::correlation
