// Chain extraction: backward depth-first walks from each fatal category
// along high-confidence correlation-graph edges, lowered into
// learners::Rule (CorrelationChainRule) so the meta-learner, reviser and
// predictor stay agnostic of how the chains were found.  Deterministic:
// ascending-id iteration everywhere, no RNG.
#pragma once

#include <cstddef>
#include <vector>

#include "learners/correlation/event_graph.hpp"
#include "learners/rule.hpp"

namespace dml::learners::correlation {

struct ChainMinerConfig {
  /// Minimum per-edge confidence for an edge to be walkable.
  double min_edge_confidence = 0.25;
  /// Minimum product of edge confidences for a chain to be emitted.
  double min_chain_confidence = 0.05;
  /// Chain length bounds, in non-fatal stages.  The floor of 2 leaves
  /// single-precursor pairs to the association learner (which refuses
  /// them too: min_antecedent = 2) — a lone chatty warning is not a
  /// chain.
  std::size_t min_chain_length = 2;
  std::size_t max_chain_length = 4;
  /// Fan-in cap during the backward walk: only the top-k predecessors
  /// (by confidence) of a node are explored, bounding the DFS.
  std::size_t max_predecessors = 6;
  /// Highest-confidence chains kept per fatal category.
  std::size_t max_chains_per_fatal = 8;
};

/// Mines maximal high-confidence chains ending in each observed fatal
/// category.  A chain is emitted where the backward walk can go no
/// further (no predecessor passes the thresholds) or hits the length
/// cap; emitting only maximal chains keeps one warning per cascade
/// instead of one per suffix.
std::vector<Rule> mine_chains(const EventGraph& graph,
                              const ChainMinerConfig& config);

}  // namespace dml::learners::correlation
