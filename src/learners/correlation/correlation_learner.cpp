#include "learners/correlation/correlation_learner.hpp"

#include "common/failpoint.hpp"

namespace dml::learners {

std::vector<Rule> CorrelationLearner::learn(
    std::span<const bgl::Event> training, DurationSec window) const {
  common::failpoint(common::failpoints::kCorrelationBuild);
  // Wp is deliberately not folded into the adjacency window: chains are
  // interesting precisely where their stride exceeds Wp, and each mined
  // rule carries its own stage_window for serving.
  (void)window;
  correlation::EventGraph graph(config_.graph);
  graph.accumulate(training);
  return correlation::mine_chains(graph, config_.miner);
}

}  // namespace dml::learners
