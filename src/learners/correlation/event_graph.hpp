// Event-correlation graph (LogMaster-style, arXiv:1003.0951): a directed
// graph over event categories whose edge a -> b accumulates one
// time-decayed contribution every time b occurs within the adjacency
// window after the most recent a in the same scope.  The decay kernel
// exp(-gap / tau) makes tight causal couplings weigh more than loose
// ones; window-level recency (forgetting old behaviour entirely) is the
// retraining regime's job, not the graph's.  See DESIGN.md §14.
#pragma once

#include <cstdint>
#include <span>
#include <unordered_map>
#include <vector>

#include "bgl/record.hpp"
#include "common/types.hpp"

namespace dml::learners::correlation {

struct EventGraphConfig {
  /// Adjacency window: b is adjacent to a when it occurs at most this
  /// long after a's most recent occurrence.  Deliberately wider than the
  /// prediction window Wp — chains whose stage gaps exceed Wp are the
  /// ones the flat windowed learners cannot represent.
  DurationSec window = 900;
  /// Decay time constant of the edge-weight kernel exp(-gap / tau).
  DurationSec decay_tau = 300;
  /// Accumulate adjacency within a midplane only: co-occurrence across
  /// unrelated midplanes is coincidence, not causality.  (Cross-midplane
  /// cascade hops pay a weight penalty; the miner's thresholds are low
  /// enough that moderately hopping chains still surface.)
  bool scope_by_midplane = true;
};

class EventGraph {
 public:
  explicit EventGraph(EventGraphConfig config = {}) : config_(config) {}

  /// Folds a time-ordered event span into the graph.  May be called
  /// repeatedly; spans are treated as independent (no adjacency across
  /// the seam).
  void accumulate(std::span<const bgl::Event> events);

  /// An incoming edge of some target category.
  struct Predecessor {
    CategoryId category = kInvalidCategory;
    /// weight(a -> b) / occurrences(a), clamped to [0, 1]: the decayed
    /// fraction of a's occurrences that b followed.
    double confidence = 0.0;
    /// Raw (undecayed) co-occurrence count of the edge.
    std::uint32_t count = 0;
  };

  /// Incoming edges of `target` with confidence >= min_confidence, in
  /// ascending source-category order (deterministic mining).
  std::vector<Predecessor> predecessors(CategoryId target,
                                        double min_confidence) const;

  /// Fatal categories observed at least once, ascending.
  const std::vector<CategoryId>& fatal_categories() const {
    return fatal_categories_;
  }

  std::uint32_t occurrences(CategoryId c) const {
    return c < occurrences_.size() ? occurrences_[c] : 0;
  }
  std::uint32_t fatal_occurrences(CategoryId c) const {
    return c < fatal_occurrences_.size() ? fatal_occurrences_[c] : 0;
  }

  std::size_t edge_count() const { return edges_.size(); }
  const EventGraphConfig& config() const { return config_; }

 private:
  struct Edge {
    double weight = 0.0;
    std::uint32_t count = 0;
  };

  EventGraphConfig config_;
  /// Edge key: (source << 16) | target.
  std::unordered_map<std::uint32_t, Edge> edges_;
  /// Per-scope last-occurrence time of each non-fatal category.
  std::unordered_map<std::uint32_t, std::vector<TimeSec>> last_seen_;
  std::vector<std::uint32_t> occurrences_;        // non-fatal, as sources
  std::vector<std::uint32_t> fatal_occurrences_;  // chain consequents
  std::vector<CategoryId> fatal_categories_;
};

}  // namespace dml::learners::correlation
