#include "learners/correlation/event_graph.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

namespace dml::learners::correlation {

namespace {

constexpr TimeSec kNever = std::numeric_limits<TimeSec>::min();

std::uint32_t edge_key(CategoryId source, CategoryId target) {
  return (static_cast<std::uint32_t>(source) << 16) | target;
}

}  // namespace

void EventGraph::accumulate(std::span<const bgl::Event> events) {
  // Fresh span: adjacency must not leak across the seam between calls.
  for (auto& [scope, seen] : last_seen_) {
    std::fill(seen.begin(), seen.end(), kNever);
  }

  const double tau =
      static_cast<double>(std::max<DurationSec>(1, config_.decay_tau));
  for (const bgl::Event& event : events) {
    const CategoryId cat = event.category;
    if (cat == kInvalidCategory) continue;
    const std::size_t need = static_cast<std::size_t>(cat) + 1;
    if (occurrences_.size() < need) {
      occurrences_.resize(need, 0);
      fatal_occurrences_.resize(need, 0);
    }

    const std::uint32_t scope =
        config_.scope_by_midplane
            ? event.location.enclosing_midplane().packed()
            : 0;
    std::vector<TimeSec>& seen = last_seen_[scope];
    if (seen.size() < need) seen.resize(need, kNever);

    // Edges from every category recently seen in this scope.  O(#cats)
    // per event; the taxonomy is ~220 categories, so this stays linear
    // in practice (see bench_hot_paths' graph-build timing).
    const TimeSec horizon = event.time - config_.window;
    for (CategoryId a = 0; a < seen.size(); ++a) {
      const TimeSec t_a = seen[a];
      if (t_a == kNever || t_a < horizon || a == cat) continue;
      Edge& edge = edges_[edge_key(a, cat)];
      edge.weight += std::exp(-static_cast<double>(event.time - t_a) / tau);
      edge.count += 1;
    }

    if (event.fatal) {
      // Fatal events terminate chains; they never act as sources, so
      // they are not entered into the recency table.
      if (fatal_occurrences_[cat]++ == 0) {
        fatal_categories_.insert(
            std::lower_bound(fatal_categories_.begin(),
                             fatal_categories_.end(), cat),
            cat);
      }
    } else {
      ++occurrences_[cat];
      seen[cat] = event.time;
    }
  }
}

std::vector<EventGraph::Predecessor> EventGraph::predecessors(
    CategoryId target, double min_confidence) const {
  std::vector<Predecessor> out;
  for (const auto& [key, edge] : edges_) {
    if ((key & 0xFFFFu) != target) continue;
    const CategoryId source = static_cast<CategoryId>(key >> 16);
    const std::uint32_t occ = occurrences(source);
    if (occ == 0) continue;
    const double confidence = std::min(1.0, edge.weight / occ);
    if (confidence < min_confidence) continue;
    out.push_back({source, confidence, edge.count});
  }
  std::sort(out.begin(), out.end(),
            [](const Predecessor& a, const Predecessor& b) {
              return a.category < b.category;
            });
  return out;
}

}  // namespace dml::learners::correlation
