// Correlation-graph base learner (DESIGN.md §14): builds the time-decayed
// event-correlation graph over the training span and lowers its
// high-confidence chains into correlation-chain rules.  The fourth base
// method in the mixture — it sees ordered multi-stage cascades whose
// stage gaps exceed the prediction window Wp, which the flat windowed
// learners cannot represent.
#pragma once

#include "learners/base_learner.hpp"
#include "learners/correlation/chain_miner.hpp"
#include "learners/correlation/event_graph.hpp"

namespace dml::learners {

struct CorrelationConfig {
  correlation::EventGraphConfig graph;
  correlation::ChainMinerConfig miner;
};

class CorrelationLearner final : public BaseLearner {
 public:
  explicit CorrelationLearner(CorrelationConfig config = {})
      : config_(config) {}

  RuleSource source() const override { return RuleSource::kCorrelation; }

  std::vector<Rule> learn(std::span<const bgl::Event> training,
                          DurationSec window) const override;

  const CorrelationConfig& config() const { return config_; }

 private:
  CorrelationConfig config_;
};

}  // namespace dml::learners
