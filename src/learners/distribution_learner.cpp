#include "learners/distribution_learner.hpp"

#include <cmath>

#include "stats/empirical.hpp"

namespace dml::learners {

std::optional<stats::ModelSelection> DistributionLearner::fit_interarrivals(
    std::span<const bgl::Event> training) {
  std::vector<double> times;
  for (const auto& e : training) {
    if (e.fatal) times.push_back(static_cast<double>(e.time));
  }
  auto gaps = stats::inter_arrivals(times);
  // Events at the same recorded second produce zero gaps the lifetime
  // families cannot model; floor them at one second.
  for (double& g : gaps) g = std::max(1.0, g);
  if (gaps.size() < 2) return std::nullopt;
  return stats::select_lifetime_model(gaps);
}

std::vector<Rule> DistributionLearner::learn(
    std::span<const bgl::Event> training, DurationSec /*window*/) const {
  std::vector<Rule> rules;
  std::size_t fatal_count = 0;
  for (const auto& e : training) fatal_count += e.fatal ? 1 : 0;
  if (fatal_count < config_.min_samples + 1) return rules;

  const auto selection = fit_interarrivals(training);
  if (!selection) return rules;

  DistributionRule rule;
  rule.model = selection->best.model;
  rule.cdf_threshold = config_.cdf_threshold;
  rule.elapsed_trigger = static_cast<DurationSec>(
      std::llround(rule.model.quantile(config_.cdf_threshold)));
  rules.emplace_back(Rule::Body(std::move(rule)));
  return rules;
}

}  // namespace dml::learners
