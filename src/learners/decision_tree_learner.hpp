// Decision-tree base learner — the first of the paper's §7 future-work
// methods ("we plan to examine other data mining methods, such as
// decision tree and neural network, to popularize our base learners").
//
// Unlike the three pattern learners it is a discriminative classifier:
// it labels each instant of the log with "a failure follows within Wp"
// and learns a CART over the window features of features.hpp.  It plugs
// into the meta-learner / reviser / predictor unchanged, demonstrating
// the paper's claim that "other predictive methods can be easily
// incorporated into our framework".
#pragma once

#include "learners/base_learner.hpp"
#include "learners/decision_tree.hpp"

namespace dml::learners {

struct DecisionTreeConfig {
  TreeConfig tree;
  /// Leaf probability above which the rule warns.
  double probability_threshold = 0.5;
  /// Negative subsampling ratio for training (see features.hpp).
  double max_negative_ratio = 3.0;
  /// Minimum positive samples required to emit a rule at all.
  std::size_t min_positive_samples = 20;
};

class DecisionTreeLearner final : public BaseLearner {
 public:
  explicit DecisionTreeLearner(DecisionTreeConfig config = {})
      : config_(config) {}

  RuleSource source() const override { return RuleSource::kDecisionTree; }

  std::vector<Rule> learn(std::span<const bgl::Event> training,
                          DurationSec window) const override;

  const DecisionTreeConfig& config() const { return config_; }

 private:
  DecisionTreeConfig config_;
};

}  // namespace dml::learners
