#include "learners/features.hpp"

#include <algorithm>
#include <cmath>

namespace dml::learners {

FeatureTracker::FeatureTracker(DurationSec window,
                               const bgl::Taxonomy& taxonomy)
    : taxonomy_(&taxonomy),
      window_(window),
      category_counts_(taxonomy.size(), 0) {}

void FeatureTracker::expire(TimeSec now) {
  while (!recent_.empty() && recent_.front().time <= now - window_) {
    const auto& old = recent_.front();
    const auto& cat = taxonomy_->category(old.category);
    if (old.fatal) {
      --fatal_count_;
    } else {
      --facility_counts_[static_cast<std::size_t>(cat.facility)];
      if (cat.severity >= Severity::kWarning) --warning_count_;
      if (--category_counts_[old.category] == 0) --distinct_categories_;
    }
    recent_.pop_front();
  }
}

void FeatureTracker::advance(TimeSec now) {
  now_ = std::max(now_, now);
  expire(now_);
}

void FeatureTracker::observe(const bgl::Event& event) {
  advance(event.time);
  const auto& cat = taxonomy_->category(event.category);
  if (event.fatal) {
    ++fatal_count_;
    last_fatal_ = event.time;
  } else {
    ++facility_counts_[static_cast<std::size_t>(cat.facility)];
    if (cat.severity >= Severity::kWarning) ++warning_count_;
    if (category_counts_[event.category]++ == 0) ++distinct_categories_;
  }
  recent_.push_back(event);
}

FeatureVector FeatureTracker::features() const {
  FeatureVector f{};
  for (std::size_t i = 0; i < bgl::kNumFacilities; ++i) {
    f[i] = static_cast<double>(facility_counts_[i]);
  }
  f[kFatalCount] = static_cast<double>(fatal_count_);
  f[kWarningCount] = static_cast<double>(warning_count_);
  f[kDistinctCategories] = static_cast<double>(distinct_categories_);
  const double elapsed =
      last_fatal_ ? static_cast<double>(now_ - *last_fatal_) : 1e9;
  f[kLogElapsedSinceFatal] = std::log2(1.0 + std::max(0.0, elapsed));
  return f;
}

std::vector<LabelledSample> build_labelled_samples(
    std::span<const bgl::Event> events, DurationSec window,
    double max_negative_ratio) {
  std::vector<LabelledSample> all;
  all.reserve(events.size());
  FeatureTracker tracker(window);
  std::size_t positives = 0;
  for (std::size_t i = 0; i < events.size(); ++i) {
    tracker.observe(events[i]);
    LabelledSample sample;
    sample.features = tracker.features();
    // Label: does a fatal event follow within (t, t+window]?
    const TimeSec t = events[i].time;
    for (std::size_t j = i + 1; j < events.size(); ++j) {
      if (events[j].time > t + window) break;
      if (events[j].fatal && events[j].time > t) {
        sample.positive = true;
        break;
      }
    }
    positives += sample.positive ? 1 : 0;
    all.push_back(sample);
  }

  const auto max_negatives = static_cast<std::size_t>(
      max_negative_ratio *
      static_cast<double>(std::max<std::size_t>(1, positives)));
  std::size_t negatives = all.size() - positives;
  if (negatives <= max_negatives) return all;

  // Deterministic even-spaced subsample of the negatives.
  std::vector<LabelledSample> sampled;
  sampled.reserve(positives + max_negatives);
  const double stride =
      static_cast<double>(negatives) / static_cast<double>(max_negatives);
  double next_keep = 0.0;
  std::size_t negative_index = 0;
  for (const auto& sample : all) {
    if (sample.positive) {
      sampled.push_back(sample);
      continue;
    }
    if (static_cast<double>(negative_index) >= next_keep) {
      sampled.push_back(sample);
      next_keep += stride;
    }
    ++negative_index;
  }
  return sampled;
}

std::string_view feature_name(std::size_t index) {
  if (index < bgl::kNumFacilities) {
    return to_string(static_cast<bgl::Facility>(index));
  }
  switch (index) {
    case kFatalCount: return "fatal-count";
    case kWarningCount: return "warning-count";
    case kDistinctCategories: return "distinct-categories";
    case kLogElapsedSinceFatal: return "log-elapsed-since-fatal";
    default: return "unknown";
  }
}

}  // namespace dml::learners
