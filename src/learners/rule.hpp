// Rule model shared by the base learners, the meta-learner, the
// reviser, and the predictor (paper §4).
//
// Four rule families exist, mirroring the base learners:
//  * association rules  {e1..ek} -> f (confidence)         [AR]
//  * statistical rules  "k failures within Wp => another"  [SR]
//  * distribution rules "elapsed since last failure beyond
//    the fitted CDF threshold => failure ahead"             [PD]
//  * decision-tree rules: classifier over window features   [DT]
//  * neural-network rules: MLP over the same features       [NN]
//    (DT and NN are the paper's §7 future-work learners, disabled by
//    default so the headline reproduction runs the paper's trio)
//  * correlation-chain rules: ordered multi-stage precursor
//    chains mined from the event-correlation graph            [CC]
//    (LogMaster-style, arXiv:1003.0951; DESIGN.md §14)
#pragma once

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

#include "bgl/taxonomy.hpp"
#include "common/types.hpp"
#include "learners/decision_tree.hpp"
#include "learners/neural_net.hpp"
#include "stats/distributions.hpp"

namespace dml::learners {

enum class RuleSource : std::uint8_t {
  kAssociation = 0,
  kStatistical = 1,
  kDistribution = 2,
  kDecisionTree = 3,
  kNeuralNet = 4,
  // Appended (not renumbered) so per-source arrays, coverage bitmasks
  // and serialized rule files from earlier versions keep their meaning.
  kCorrelation = 5,
};

inline constexpr std::size_t kNumRuleSources = 6;

std::string_view to_string(RuleSource source);

struct AssociationRule {
  /// Sorted, de-duplicated non-fatal antecedent categories.
  std::vector<CategoryId> antecedent;
  /// Predicted fatal category.
  CategoryId consequent = kInvalidCategory;
  double support = 0.0;
  double confidence = 0.0;
};

struct StatisticalRule {
  /// Trigger: k fatal events observed within the window.
  int k = 1;
  /// P(another failure within Wp | trigger) estimated on training data.
  double probability = 0.0;
};

struct DistributionRule {
  stats::LifetimeModel model;
  /// CDF threshold (paper default 0.6).
  double cdf_threshold = 0.6;
  /// Precomputed model.quantile(cdf_threshold): warn when the elapsed
  /// time since the last failure reaches this.
  DurationSec elapsed_trigger = 0;
};

struct DecisionTreeRule {
  DecisionTree tree;
  /// Warn when the tree's leaf probability reaches this.
  double probability_threshold = 0.5;
};

struct NeuralNetRule {
  NeuralNet net;
  /// Warn when the network's output probability reaches this.
  double probability_threshold = 0.5;
};

struct CorrelationChainRule {
  /// Ordered non-fatal stages (order-significant, unlike an association
  /// antecedent): the predictor fires only when the stages occurred in
  /// this order, ending with the most recent one.
  std::vector<CategoryId> chain;
  /// Predicted fatal category.
  CategoryId consequent = kInvalidCategory;
  /// Product of the chain's edge confidences in the correlation graph.
  double confidence = 0.0;
  /// Weakest-edge co-occurrence count, normalized by the consequent's
  /// occurrence count (clamped to [0, 1]).
  double support = 0.0;
  /// Max gap between consecutive matched stages — the adjacency window
  /// the chain was mined with.  Also the warning horizon after the last
  /// stage (a chain's stride can exceed the prediction window Wp; that
  /// is exactly what the flat windowed learners cannot see).
  DurationSec stage_window = 600;
};

class Rule {
 public:
  using Body = std::variant<AssociationRule, StatisticalRule,
                            DistributionRule, DecisionTreeRule,
                            NeuralNetRule, CorrelationChainRule>;

  Rule() : body_(StatisticalRule{}) {}
  explicit Rule(Body body) : body_(std::move(body)) {}

  RuleSource source() const;
  const Body& body() const { return body_; }

  const AssociationRule* as_association() const {
    return std::get_if<AssociationRule>(&body_);
  }
  const StatisticalRule* as_statistical() const {
    return std::get_if<StatisticalRule>(&body_);
  }
  const DistributionRule* as_distribution() const {
    return std::get_if<DistributionRule>(&body_);
  }
  const DecisionTreeRule* as_decision_tree() const {
    return std::get_if<DecisionTreeRule>(&body_);
  }
  const NeuralNetRule* as_neural_net() const {
    return std::get_if<NeuralNetRule>(&body_);
  }
  const CorrelationChainRule* as_correlation() const {
    return std::get_if<CorrelationChainRule>(&body_);
  }

  /// Stable identity for rule-churn accounting (Figure 12): two rules
  /// with the same identity are "the same rule" across retrainings even
  /// if their statistics moved.  AR: antecedent set + consequent;
  /// SR: k; PD: family + threshold bucket.
  std::string identity() const;

  /// Human-readable rendering, e.g.
  /// "networkWarningInterrupt, networkError -> socketReadFailure: 1.0".
  std::string describe(const bgl::Taxonomy& taxonomy) const;

 private:
  Body body_;
};

}  // namespace dml::learners
