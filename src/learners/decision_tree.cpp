#include "learners/decision_tree.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <numeric>

namespace dml::learners {
namespace {

double gini(std::size_t positives, std::size_t total) {
  if (total == 0) return 0.0;
  const double p = static_cast<double>(positives) / static_cast<double>(total);
  return 2.0 * p * (1.0 - p);
}

struct BestSplit {
  std::size_t feature = 0;
  double threshold = 0.0;
  double impurity_decrease = -1.0;
};

/// Finds the best axis-aligned split of indices[begin, end).
BestSplit find_split(std::span<const LabelledSample> samples,
                     std::vector<std::uint32_t>& indices, std::size_t begin,
                     std::size_t end, std::size_t min_leaf) {
  const std::size_t n = end - begin;
  std::size_t total_pos = 0;
  for (std::size_t i = begin; i < end; ++i) {
    total_pos += samples[indices[i]].positive ? 1 : 0;
  }
  const double parent = gini(total_pos, n);

  BestSplit best;
  std::vector<std::uint32_t> order(indices.begin() +
                                       static_cast<std::ptrdiff_t>(begin),
                                   indices.begin() +
                                       static_cast<std::ptrdiff_t>(end));
  for (std::size_t f = 0; f < kNumFeatures; ++f) {
    std::sort(order.begin(), order.end(),
              [&](std::uint32_t a, std::uint32_t b) {
                return samples[a].features[f] < samples[b].features[f];
              });
    std::size_t left_pos = 0;
    for (std::size_t i = 0; i + 1 < n; ++i) {
      left_pos += samples[order[i]].positive ? 1 : 0;
      const double x = samples[order[i]].features[f];
      const double next = samples[order[i + 1]].features[f];
      if (x == next) continue;  // can't split between equal values
      const std::size_t left_n = i + 1;
      const std::size_t right_n = n - left_n;
      if (left_n < min_leaf || right_n < min_leaf) continue;
      const double weighted =
          (static_cast<double>(left_n) * gini(left_pos, left_n) +
           static_cast<double>(right_n) * gini(total_pos - left_pos,
                                               right_n)) /
          static_cast<double>(n);
      const double decrease = parent - weighted;
      if (decrease > best.impurity_decrease) {
        best.impurity_decrease = decrease;
        best.feature = f;
        best.threshold = 0.5 * (x + next);
      }
    }
  }
  return best;
}

}  // namespace

std::int32_t DecisionTree::build(std::span<const LabelledSample> samples,
                                 std::vector<std::uint32_t>& indices,
                                 std::size_t begin, std::size_t end,
                                 int depth, const TreeConfig& config) {
  const std::size_t n = end - begin;
  std::size_t positives = 0;
  for (std::size_t i = begin; i < end; ++i) {
    positives += samples[indices[i]].positive ? 1 : 0;
  }

  Node node;
  node.samples = static_cast<std::uint32_t>(n);
  node.probability =
      n == 0 ? 0.0
             : static_cast<double>(positives) / static_cast<double>(n);

  const bool pure = positives == 0 || positives == n;
  if (depth >= config.max_depth || n < 2 * config.min_samples_leaf || pure) {
    nodes_.push_back(node);
    return static_cast<std::int32_t>(nodes_.size() - 1);
  }

  const BestSplit split =
      find_split(samples, indices, begin, end, config.min_samples_leaf);
  if (split.impurity_decrease < config.min_impurity_decrease) {
    nodes_.push_back(node);
    return static_cast<std::int32_t>(nodes_.size() - 1);
  }

  const auto mid_it = std::partition(
      indices.begin() + static_cast<std::ptrdiff_t>(begin),
      indices.begin() + static_cast<std::ptrdiff_t>(end),
      [&](std::uint32_t idx) {
        return samples[idx].features[split.feature] <= split.threshold;
      });
  const auto mid =
      static_cast<std::size_t>(mid_it - indices.begin());

  node.feature = static_cast<std::int16_t>(split.feature);
  node.threshold = split.threshold;
  nodes_.push_back(node);
  const auto self = static_cast<std::int32_t>(nodes_.size() - 1);
  const auto left = build(samples, indices, begin, mid, depth + 1, config);
  const auto right = build(samples, indices, mid, end, depth + 1, config);
  nodes_[static_cast<std::size_t>(self)].left = left;
  nodes_[static_cast<std::size_t>(self)].right = right;
  return self;
}

DecisionTree DecisionTree::fit(std::span<const LabelledSample> samples,
                               const TreeConfig& config) {
  DecisionTree tree;
  if (samples.empty()) {
    tree.nodes_.push_back(Node{});
    return tree;
  }
  std::vector<std::uint32_t> indices(samples.size());
  std::iota(indices.begin(), indices.end(), 0u);
  tree.build(samples, indices, 0, indices.size(), 0, config);
  return tree;
}

double DecisionTree::predict(const FeatureVector& features) const {
  if (nodes_.empty()) return 0.0;
  std::size_t node = 0;
  for (;;) {
    const Node& current = nodes_[node];
    if (current.feature < 0) return current.probability;
    node = static_cast<std::size_t>(
        features[static_cast<std::size_t>(current.feature)] <=
                current.threshold
            ? current.left
            : current.right);
  }
}

int DecisionTree::depth() const {
  // Depth via iterative traversal from the root at index 0.
  if (nodes_.empty()) return 0;
  int max_depth = 0;
  std::vector<std::pair<std::size_t, int>> stack = {{0, 1}};
  while (!stack.empty()) {
    const auto [index, depth] = stack.back();
    stack.pop_back();
    max_depth = std::max(max_depth, depth);
    const Node& node = nodes_[index];
    if (node.feature >= 0) {
      stack.push_back({static_cast<std::size_t>(node.left), depth + 1});
      stack.push_back({static_cast<std::size_t>(node.right), depth + 1});
    }
  }
  return max_depth;
}

std::string DecisionTree::serialize() const {
  std::string out;
  for (const Node& node : nodes_) {
    if (!out.empty()) out += ';';
    char buf[128];
    std::snprintf(buf, sizeof(buf), "%d:%.12g:%d:%d:%.12g:%u", node.feature,
                  node.threshold, node.left, node.right, node.probability,
                  node.samples);
    out += buf;
  }
  return out;
}

std::optional<DecisionTree> DecisionTree::deserialize(std::string_view text) {
  DecisionTree tree;
  std::size_t start = 0;
  while (start <= text.size()) {
    const std::size_t end = std::min(text.find(';', start), text.size());
    const std::string token(text.substr(start, end - start));
    Node node;
    int feature = 0;
    unsigned samples = 0;
    if (std::sscanf(token.c_str(), "%d:%lf:%d:%d:%lf:%u", &feature,
                    &node.threshold, &node.left, &node.right,
                    &node.probability, &samples) != 6) {
      return std::nullopt;
    }
    if (feature >= static_cast<int>(kNumFeatures)) return std::nullopt;
    node.feature = static_cast<std::int16_t>(feature);
    node.samples = samples;
    tree.nodes_.push_back(node);
    if (end == text.size()) break;
    start = end + 1;
  }
  if (tree.nodes_.empty()) return std::nullopt;
  // Validate child indices.
  for (const Node& node : tree.nodes_) {
    if (node.feature >= 0) {
      if (node.left < 0 || node.right < 0 ||
          node.left >= static_cast<std::int32_t>(tree.nodes_.size()) ||
          node.right >= static_cast<std::int32_t>(tree.nodes_.size())) {
        return std::nullopt;
      }
    }
  }
  return tree;
}

std::string DecisionTree::describe() const {
  std::string out;
  std::vector<std::pair<std::size_t, int>> stack = {{0, 0}};
  while (!stack.empty() && !nodes_.empty()) {
    const auto [index, indent] = stack.back();
    stack.pop_back();
    const Node& node = nodes_[index];
    out.append(static_cast<std::size_t>(indent) * 2, ' ');
    if (node.feature < 0) {
      char buf[64];
      std::snprintf(buf, sizeof(buf), "leaf p=%.3f (n=%u)\n",
                    node.probability, node.samples);
      out += buf;
    } else {
      char buf[96];
      std::snprintf(buf, sizeof(buf), "if %s <= %.3f\n",
                    std::string(feature_name(
                                    static_cast<std::size_t>(node.feature)))
                        .c_str(),
                    node.threshold);
      out += buf;
      stack.push_back({static_cast<std::size_t>(node.right), indent + 1});
      stack.push_back({static_cast<std::size_t>(node.left), indent + 1});
    }
  }
  return out;
}

}  // namespace dml::learners
