// Probability-distribution base learner (paper §4.1): fits Weibull /
// exponential / log-normal models to fatal inter-arrival times by MLE,
// keeps the best, and warns "when the elapsed time since the last
// failure is longer than some threshold" — the time at which the fitted
// CDF crosses the configured probability (paper default 0.6).
#pragma once

#include "learners/base_learner.hpp"
#include "stats/fitting.hpp"

namespace dml::learners {

struct DistributionConfig {
  double cdf_threshold = 0.6;
  /// Minimum number of inter-arrival samples required for a fit.
  std::size_t min_samples = 8;
};

class DistributionLearner final : public BaseLearner {
 public:
  explicit DistributionLearner(DistributionConfig config = {})
      : config_(config) {}

  RuleSource source() const override { return RuleSource::kDistribution; }

  std::vector<Rule> learn(std::span<const bgl::Event> training,
                          DurationSec window) const override;

  const DistributionConfig& config() const { return config_; }

  /// The full model-selection diagnostics for a training span
  /// (Figure 5 bench).
  static std::optional<stats::ModelSelection> fit_interarrivals(
      std::span<const bgl::Event> training);

 private:
  DistributionConfig config_;
};

}  // namespace dml::learners
