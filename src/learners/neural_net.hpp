// A small feed-forward neural network (single tanh hidden layer,
// sigmoid output) over the window features — the second of the paper's
// §7 future-work base learners ("decision tree and neural network").
//
// Deliberately minimal: full-batch gradient descent with momentum on
// binary cross-entropy, deterministic initialization from a seed, and
// per-feature standardization baked into the model.  It exists to
// demonstrate learner pluggability and to serve as an ensemble ablation
// point, not to chase state-of-the-art classification.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "learners/features.hpp"

namespace dml::learners {

struct NeuralNetConfig {
  std::size_t hidden_units = 12;
  int epochs = 200;
  double learning_rate = 0.05;
  double momentum = 0.9;
  /// L2 weight decay.
  double weight_decay = 1e-4;
  std::uint64_t seed = 1;
};

class NeuralNet {
 public:
  /// Fits on the samples (standardization is derived from them); an
  /// empty sample set yields a constant-0 model.
  static NeuralNet fit(std::span<const LabelledSample> samples,
                       const NeuralNetConfig& config = {});

  /// P(positive) for a raw (unstandardized) feature vector.
  double predict(const FeatureVector& features) const;

  std::size_t hidden_units() const { return hidden_; }

  /// Compact serialization ("h;mean...;std...;w1...;b1...;w2...;b2").
  std::string serialize() const;
  static std::optional<NeuralNet> deserialize(std::string_view text);

  /// Training diagnostics: final cross-entropy on the training set.
  double training_loss() const { return training_loss_; }

  friend bool operator==(const NeuralNet&, const NeuralNet&) = default;

 private:
  std::vector<double> standardize(const FeatureVector& features) const;
  double forward(std::span<const double> x) const;

  std::size_t hidden_ = 0;
  // Standardization.
  std::vector<double> mean_;
  std::vector<double> stdev_;
  // Layer 1: hidden x kNumFeatures weights + hidden biases.
  std::vector<double> w1_;
  std::vector<double> b1_;
  // Layer 2: hidden weights + 1 bias.
  std::vector<double> w2_;
  double b2_ = 0.0;
  double training_loss_ = 0.0;
};

}  // namespace dml::learners
