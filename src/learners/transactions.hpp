// Transaction construction for association mining (paper §4.1): "on the
// training set, for each fatal event, we identify the set of non-fatal
// events preceding it within the rule generation window Wp.  The set,
// including the fatal event and their precursor non-fatal events, is
// called an event set."
#pragma once

#include <span>
#include <vector>

#include "bgl/record.hpp"
#include "common/types.hpp"

namespace dml::learners {

/// One event set: the antecedent item universe of a single fatal event.
struct Transaction {
  /// Sorted, de-duplicated non-fatal categories in [t_fatal - Wp, t_fatal).
  std::vector<CategoryId> items;
  /// The fatal event's category.
  CategoryId consequent = kInvalidCategory;
  TimeSec fatal_time = 0;
};

/// Builds the failure event sets from a time-ordered training span.
/// Fatal events with an empty precursor window still produce a
/// transaction (with no items) so that support is measured against *all*
/// failures — this is what limits association-rule recall when most
/// failures have no precursors.
std::vector<Transaction> build_failure_transactions(
    std::span<const bgl::Event> events, DurationSec window);

/// Collapses a failure burst to its lead event set: failures arriving
/// within `window` of the previous failure extend the burst and are
/// dropped from the transaction database.  Without this, one noisy
/// window preceding a 12-member cascade is counted up to twelve times
/// and chance co-occurrences flood the miner.  Division of labour with
/// the paper's ensemble: the association learner explains the *first*
/// failure of a burst; follow-on failures are the statistical learner's
/// territory.  Transactions must be in fatal_time order.
std::vector<Transaction> collapse_cascade_transactions(
    std::vector<Transaction> transactions, DurationSec window);

/// Item sets of non-fatal categories observed in failure-free windows,
/// sampled by sliding a Wp-wide window with the given stride.  A true
/// sliding window: per-category counts are updated incrementally as the
/// window advances, so the cost is O(events + windows) instead of
/// re-scanning every window from its low edge.  Not used by the paper's
/// miner (kept for the negative-sampling ablation bench).
std::vector<std::vector<CategoryId>> sample_negative_windows(
    std::span<const bgl::Event> events, DurationSec window, DurationSec stride);

// ---- Dense category ids + bitset transaction encoding -----------------
//
// CategoryId is a uint16 over a ~219-entry taxonomy, but any one
// retrain's transaction database touches far fewer live categories.
// Remapping the live set to a dense id space [0, n) lets the miner use
// flat arrays instead of hash maps and encode each transaction as a
// fixed-width bitset of ceil(n/64) words, so an antecedent-subset test
// is a handful of word-wise ANDs instead of a std::includes merge walk.

/// Order-preserving remap of the categories present in a transaction
/// database onto [0, size()).  Ascending CategoryId maps to ascending
/// dense id, so lexicographic itemset order is preserved either way.
struct DenseCategoryMap {
  /// dense id -> original category, ascending.
  std::vector<CategoryId> to_original;
  /// original category -> dense id; kInvalidCategory entries are absent.
  /// Sized to the largest live category + 1.
  std::vector<CategoryId> to_dense;

  std::size_t size() const { return to_original.size(); }

  CategoryId dense_of(CategoryId original) const {
    return original < to_dense.size() ? to_dense[original] : kInvalidCategory;
  }
};

/// Builds the dense remap over every category occurring in `transactions`
/// (each a sorted unique item list).
DenseCategoryMap build_dense_category_map(
    std::span<const std::vector<CategoryId>> transactions);

/// Transaction database as fixed-width bitset rows over dense ids: row t
/// has bit d set iff transaction t contains dense category d.
struct TransactionBitsets {
  std::size_t words_per_row = 0;
  std::vector<std::uint64_t> words;  // row-major, rows * words_per_row

  std::size_t rows() const {
    return words_per_row == 0 ? 0 : words.size() / words_per_row;
  }
  const std::uint64_t* row(std::size_t t) const {
    return words.data() + t * words_per_row;
  }
};

/// Encodes each transaction as a dense bitset row.  Items not present in
/// `map` are skipped.
TransactionBitsets encode_transaction_bitsets(
    std::span<const std::vector<CategoryId>> transactions,
    const DenseCategoryMap& map);

/// True if every set bit of `subset` (a words_per_row-long mask) is set
/// in `row` — the word-wise replacement for contains_sorted on the
/// mining hot path.
inline bool bitset_contains(const std::uint64_t* row,
                            const std::uint64_t* subset, std::size_t words) {
  for (std::size_t w = 0; w < words; ++w) {
    if ((row[w] & subset[w]) != subset[w]) return false;
  }
  return true;
}

}  // namespace dml::learners
