// Transaction construction for association mining (paper §4.1): "on the
// training set, for each fatal event, we identify the set of non-fatal
// events preceding it within the rule generation window Wp.  The set,
// including the fatal event and their precursor non-fatal events, is
// called an event set."
#pragma once

#include <span>
#include <vector>

#include "bgl/record.hpp"
#include "common/types.hpp"

namespace dml::learners {

/// One event set: the antecedent item universe of a single fatal event.
struct Transaction {
  /// Sorted, de-duplicated non-fatal categories in [t_fatal - Wp, t_fatal).
  std::vector<CategoryId> items;
  /// The fatal event's category.
  CategoryId consequent = kInvalidCategory;
  TimeSec fatal_time = 0;
};

/// Builds the failure event sets from a time-ordered training span.
/// Fatal events with an empty precursor window still produce a
/// transaction (with no items) so that support is measured against *all*
/// failures — this is what limits association-rule recall when most
/// failures have no precursors.
std::vector<Transaction> build_failure_transactions(
    std::span<const bgl::Event> events, DurationSec window);

/// Collapses a failure burst to its lead event set: failures arriving
/// within `window` of the previous failure extend the burst and are
/// dropped from the transaction database.  Without this, one noisy
/// window preceding a 12-member cascade is counted up to twelve times
/// and chance co-occurrences flood the miner.  Division of labour with
/// the paper's ensemble: the association learner explains the *first*
/// failure of a burst; follow-on failures are the statistical learner's
/// territory.  Transactions must be in fatal_time order.
std::vector<Transaction> collapse_cascade_transactions(
    std::vector<Transaction> transactions, DurationSec window);

/// Item sets of non-fatal categories observed in failure-free windows,
/// sampled by sliding a Wp-wide window with the given stride.  Not used
/// by the paper's miner (kept for the negative-sampling ablation bench).
std::vector<std::vector<CategoryId>> sample_negative_windows(
    std::span<const bgl::Event> events, DurationSec window, DurationSec stride);

}  // namespace dml::learners
