// A small CART-style binary decision tree over fixed-length feature
// vectors (Gini impurity, axis-aligned numeric splits).  Kept generic so
// other learners can reuse it; the decision-tree base learner wraps it
// behind the BaseLearner interface.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "learners/features.hpp"

namespace dml::learners {

struct TreeConfig {
  int max_depth = 5;
  std::size_t min_samples_leaf = 10;
  /// A split must reduce weighted Gini impurity by at least this much.
  double min_impurity_decrease = 1e-4;
};

class DecisionTree {
 public:
  /// Fits on the samples; an empty sample set yields a constant-0 tree.
  static DecisionTree fit(std::span<const LabelledSample> samples,
                          const TreeConfig& config = {});

  /// P(positive) at the leaf this feature vector lands in.
  double predict(const FeatureVector& features) const;

  std::size_t node_count() const { return nodes_.size(); }
  int depth() const;

  /// Indented text rendering for diagnostics.
  std::string describe() const;

  /// Compact single-line serialization:
  /// "f:threshold:left:right:prob:samples;..." — one token per node.
  std::string serialize() const;
  static std::optional<DecisionTree> deserialize(std::string_view text);

  friend bool operator==(const DecisionTree&, const DecisionTree&) = default;

 private:
  struct Node {
    // Internal node when feature >= 0: go left if x[feature] <= threshold.
    std::int16_t feature = -1;
    double threshold = 0.0;
    std::int32_t left = -1;
    std::int32_t right = -1;
    // Leaf payload.
    double probability = 0.0;
    std::uint32_t samples = 0;

    friend bool operator==(const Node&, const Node&) = default;
  };

  std::int32_t build(std::span<const LabelledSample> samples,
                     std::vector<std::uint32_t>& indices, std::size_t begin,
                     std::size_t end, int depth, const TreeConfig& config);

  std::vector<Node> nodes_;
};

}  // namespace dml::learners
