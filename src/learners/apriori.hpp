// Apriori frequent-itemset miner over category transactions ("we then
// apply the standard association rule algorithm", paper §4.1).  Itemsets
// are sorted CategoryId vectors; candidate generation is the classic
// join-and-prune.  Counting is layout-optimized (DESIGN.md §9): live
// categories are remapped to a dense id space, L2 support is computed
// vertically (per-item tidset bitmaps, pair support = popcount of the
// AND), and L3+ candidates are tested word-wise against fixed-width
// transaction bitsets, chunked across the shared thread pool with
// per-chunk count buffers.  The frequent-itemset multiset and its
// ordering are bit-identical to the textbook formulation (golden tests
// enforce this against a reference miner).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/types.hpp"

namespace dml::learners {

using Itemset = std::vector<CategoryId>;  // sorted, unique

struct FrequentItemset {
  Itemset items;
  std::uint32_t count = 0;
};

struct AprioriConfig {
  /// Minimum support as a fraction of the transaction count.
  double min_support = 0.01;
  /// Largest itemset size mined (the paper's signatures are 2-4 events).
  std::size_t max_items = 4;
  /// Support counting switches to the thread pool above this many
  /// (transactions x candidates).
  std::size_t parallel_work_threshold = 1u << 22;
};

/// All frequent itemsets (sizes 1..max_items) over the given transactions
/// (each transaction must be sorted + unique).  Results are ordered by
/// size, then lexicographically.
std::vector<FrequentItemset> mine_frequent_itemsets(
    std::span<const Itemset> transactions, const AprioriConfig& config);

/// True if `subset` (sorted) is contained in `superset` (sorted).
bool contains_sorted(const Itemset& superset, const Itemset& subset);

}  // namespace dml::learners
