// Window feature extraction shared by the decision-tree learner and the
// predictor: a fixed-length numeric summary of "what the log looked
// like" in the Wp window ending at a given instant.
//
// The paper lists decision trees among the base learners it plans to
// incorporate (§7); this is the feature space they operate on.
#pragma once

#include <array>
#include <cstdint>
#include <deque>
#include <optional>
#include <span>
#include <string_view>
#include <vector>

#include "bgl/record.hpp"
#include "bgl/taxonomy.hpp"
#include "common/types.hpp"

namespace dml::learners {

/// Feature indices (fixed order; kNumFeatures-length vectors).
enum Feature : std::size_t {
  // 0..9: non-fatal event count per facility in the window.
  kFacilityCountsBegin = 0,
  // 10: fatal events in the window.
  kFatalCount = bgl::kNumFacilities,
  // 11: WARNING-or-worse non-fatal events in the window.
  kWarningCount,
  // 12: distinct non-fatal categories in the window.
  kDistinctCategories,
  // 13: log2(1 + seconds since the last fatal event); a large constant
  // when no failure has been seen yet.
  kLogElapsedSinceFatal,
  kNumFeatures,
};

using FeatureVector = std::array<double, kNumFeatures>;

/// Incrementally maintains the window feature vector over a time-ordered
/// event stream.
class FeatureTracker {
 public:
  explicit FeatureTracker(DurationSec window,
                          const bgl::Taxonomy& taxonomy = bgl::taxonomy());

  /// Advances to `now` (expiring old events) without adding an event —
  /// used for clock ticks.
  void advance(TimeSec now);

  /// Adds an event (after advancing to its time).
  void observe(const bgl::Event& event);

  /// The feature vector as of the last advance/observe.
  FeatureVector features() const;

  DurationSec window() const { return window_; }

 private:
  void expire(TimeSec now);

  const bgl::Taxonomy* taxonomy_;
  DurationSec window_;
  TimeSec now_ = 0;
  std::deque<bgl::Event> recent_;
  std::array<std::uint32_t, bgl::kNumFacilities> facility_counts_{};
  std::uint32_t fatal_count_ = 0;
  std::uint32_t warning_count_ = 0;
  std::vector<std::uint16_t> category_counts_;
  std::uint32_t distinct_categories_ = 0;
  std::optional<TimeSec> last_fatal_;
};

/// Labelled training samples: features at each event time, labelled with
/// "a fatal event occurs within (t, t+window]".  Negatives are
/// subsampled to at most `max_negative_ratio` times the positives
/// (deterministically, by even spacing) to keep the classes tractable.
struct LabelledSample {
  FeatureVector features;
  bool positive = false;
};

std::vector<LabelledSample> build_labelled_samples(
    std::span<const bgl::Event> events, DurationSec window,
    double max_negative_ratio = 3.0);

std::string_view feature_name(std::size_t index);

}  // namespace dml::learners
