#include "learners/apriori.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <optional>

#include "common/thread_pool.hpp"

namespace dml::learners {
namespace {

/// Joins two size-k itemsets sharing their first k-1 items into a
/// size-k+1 candidate; nullopt if they don't share a prefix.
std::optional<Itemset> join(const Itemset& a, const Itemset& b) {
  if (a.size() != b.size() || a.empty()) return std::nullopt;
  for (std::size_t i = 0; i + 1 < a.size(); ++i) {
    if (a[i] != b[i]) return std::nullopt;
  }
  if (a.back() >= b.back()) return std::nullopt;
  Itemset out = a;
  out.push_back(b.back());
  return out;
}

/// Apriori pruning: every (k-1)-subset of the candidate must be frequent.
bool all_subsets_frequent(const Itemset& candidate,
                          const std::vector<Itemset>& frequent_prev) {
  Itemset subset(candidate.size() - 1);
  for (std::size_t skip = 0; skip < candidate.size(); ++skip) {
    std::size_t j = 0;
    for (std::size_t i = 0; i < candidate.size(); ++i) {
      if (i != skip) subset[j++] = candidate[i];
    }
    if (!std::binary_search(frequent_prev.begin(), frequent_prev.end(),
                            subset)) {
      return false;
    }
  }
  return true;
}

std::vector<std::uint32_t> count_support(std::span<const Itemset> transactions,
                                         const std::vector<Itemset>& candidates,
                                         std::size_t parallel_threshold) {
  std::vector<std::uint32_t> counts(candidates.size(), 0);
  const std::size_t work = transactions.size() * candidates.size();
  if (work < parallel_threshold || dml::ThreadPool::shared().size() <= 1) {
    for (const Itemset& tx : transactions) {
      for (std::size_t c = 0; c < candidates.size(); ++c) {
        if (contains_sorted(tx, candidates[c])) ++counts[c];
      }
    }
    return counts;
  }
  // Parallel: each worker owns a candidate slice, scanning all
  // transactions — no write sharing.
  dml::ThreadPool::shared().parallel_for(
      0, candidates.size(), [&](std::size_t c) {
        std::uint32_t n = 0;
        for (const Itemset& tx : transactions) {
          if (contains_sorted(tx, candidates[c])) ++n;
        }
        counts[c] = n;
      });
  return counts;
}

}  // namespace

bool contains_sorted(const Itemset& superset, const Itemset& subset) {
  return std::includes(superset.begin(), superset.end(), subset.begin(),
                       subset.end());
}

std::vector<FrequentItemset> mine_frequent_itemsets(
    std::span<const Itemset> transactions, const AprioriConfig& config) {
  std::vector<FrequentItemset> result;
  if (transactions.empty() || config.max_items == 0) return result;
  const auto min_count = static_cast<std::uint32_t>(std::max<double>(
      1.0,
      std::ceil(config.min_support * static_cast<double>(transactions.size()))));

  // L1: single-item counts.
  std::map<CategoryId, std::uint32_t> singles;
  for (const Itemset& tx : transactions) {
    for (CategoryId item : tx) ++singles[item];
  }
  std::vector<Itemset> frequent;  // current level, sorted
  for (const auto& [item, count] : singles) {
    if (count >= min_count) {
      frequent.push_back({item});
      result.push_back({{item}, count});
    }
  }

  for (std::size_t level = 2;
       level <= config.max_items && frequent.size() >= 2; ++level) {
    std::vector<Itemset> candidates;
    for (std::size_t i = 0; i < frequent.size(); ++i) {
      for (std::size_t j = i + 1; j < frequent.size(); ++j) {
        auto candidate = join(frequent[i], frequent[j]);
        if (!candidate) {
          // frequent is sorted lexicographically: once prefixes diverge,
          // no later j will share i's prefix.
          break;
        }
        if (all_subsets_frequent(*candidate, frequent)) {
          candidates.push_back(std::move(*candidate));
        }
      }
    }
    if (candidates.empty()) break;

    const auto counts = count_support(transactions, candidates,
                                      config.parallel_work_threshold);
    std::vector<Itemset> next;
    for (std::size_t c = 0; c < candidates.size(); ++c) {
      if (counts[c] >= min_count) {
        result.push_back({candidates[c], counts[c]});
        next.push_back(std::move(candidates[c]));
      }
    }
    frequent = std::move(next);  // already lexicographically ordered
  }
  return result;
}

}  // namespace dml::learners
