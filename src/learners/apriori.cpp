#include "learners/apriori.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <optional>

#include "common/arena.hpp"
#include "common/check.hpp"
#include "common/simd.hpp"
#include "common/thread_pool.hpp"
#include "learners/transactions.hpp"

namespace dml::learners {
namespace {

/// Row stride the SIMD subset kernels are specialized for: rows and
/// masks are zero-padded to 1/2/4 words (a zero mask word always
/// passes, so padding never changes a count).
std::size_t padded_words(std::size_t words) {
  if (words <= 1) return 1;
  if (words <= 2) return 2;
  if (words <= 4) return 4;
  return words;
}

/// Tidset word-chunk for the vertical L2 pass, sized so every frequent
/// single's chunk fits in cache together (f * kTidChunkWords * 8 bytes;
/// ~800 KB at f = 200): each chunk is pulled from memory once and
/// reused across all O(f^2) pair intersections.
constexpr std::size_t kTidChunkWords = 512;

/// Row block for the L3+ counter: the block is streamed once per
/// candidate, so it must stay resident across the candidate loop
/// (stride 4 -> 8192 rows = 256 KB).
constexpr std::size_t kRowBlockBytes = 256u << 10;

/// Flat (k-1)-prefix equality for the join step: candidates at level k
/// are joins of two level-(k-1) itemsets sharing their first k-2 items.
bool same_prefix(const CategoryId* a, const CategoryId* b, std::size_t k) {
  for (std::size_t i = 0; i + 1 < k; ++i) {
    if (a[i] != b[i]) return false;
  }
  return true;
}

/// Binary search for `subset` (k items) among the flat level-k rows of
/// `prev` (sorted lexicographically — generation order preserves this).
bool flat_contains(const std::vector<CategoryId>& prev, std::size_t k,
                   const CategoryId* subset) {
  std::size_t lo = 0;
  std::size_t hi = prev.size() / k;
  while (lo < hi) {
    const std::size_t mid = (lo + hi) / 2;
    const CategoryId* row = prev.data() + mid * k;
    const auto order = std::lexicographical_compare_three_way(
        row, row + k, subset, subset + k);
    if (order == std::strong_ordering::less) {
      lo = mid + 1;
    } else if (order == std::strong_ordering::greater) {
      hi = mid;
    } else {
      return true;
    }
  }
  return false;
}

/// Apriori pruning over the flat representation: every (k-1)-subset of
/// the k-item candidate must be frequent.  The two subsets that formed
/// the join are skipped — they are frequent by construction.
bool all_subsets_frequent(const std::vector<CategoryId>& prev, std::size_t k,
                          const CategoryId* candidate,
                          CategoryId* subset_scratch) {
  for (std::size_t skip = 0; skip + 2 < k; ++skip) {
    std::size_t j = 0;
    for (std::size_t i = 0; i < k; ++i) {
      if (i != skip) subset_scratch[j++] = candidate[i];
    }
    if (!flat_contains(prev, k - 1, subset_scratch)) return false;
  }
  return true;
}

/// Counts candidate support with the dispatched subset kernel over
/// zero-padded bitset rows, cache-blocked (row blocks stay hot across
/// the candidate loop) and chunked across the pool with per-chunk count
/// buffers, so there is no write sharing.
void count_candidates(const std::uint64_t* rows, std::size_t n_rows,
                      std::size_t stride,
                      const std::uint64_t* masks, std::size_t n_candidates,
                      std::size_t parallel_threshold,
                      std::uint32_t* counts) {
  const auto& kernels = simd::active();
  const std::size_t block_rows = std::max<std::size_t>(
      1, kRowBlockBytes / (stride * sizeof(std::uint64_t)));
  const auto count_range = [&](std::size_t lo, std::size_t hi,
                               std::uint32_t* out) {
    for (std::size_t b = lo; b < hi; b += block_rows) {
      const std::size_t n = std::min(block_rows, hi - b);
      const std::uint64_t* block = rows + b * stride;
      for (std::size_t c = 0; c < n_candidates; ++c) {
        out[c] += kernels.subset_count(block, n, stride,
                                       masks + c * stride, stride);
      }
    }
  };

  const std::size_t work = n_rows * n_candidates;
  auto& pool = dml::ThreadPool::shared();
  if (work < parallel_threshold || pool.max_parallel_chunks() <= 1) {
    count_range(0, n_rows, counts);
    return;
  }
  std::vector<std::vector<std::uint32_t>> per_chunk(
      pool.max_parallel_chunks(),
      std::vector<std::uint32_t>(n_candidates, 0));
  pool.parallel_for_ranges(0, n_rows,
                           [&](std::size_t chunk, std::size_t lo,
                               std::size_t hi) {
                             count_range(lo, hi, per_chunk[chunk].data());
                           });
  for (const auto& partial : per_chunk) {
    for (std::size_t c = 0; c < n_candidates; ++c) counts[c] += partial[c];
  }
}

}  // namespace

bool contains_sorted(const Itemset& superset, const Itemset& subset) {
  return std::includes(superset.begin(), superset.end(), subset.begin(),
                       subset.end());
}

std::vector<FrequentItemset> mine_frequent_itemsets(
    std::span<const Itemset> transactions, const AprioriConfig& config) {
  std::vector<FrequentItemset> result;
  if (transactions.empty() || config.max_items == 0) return result;
  const auto min_count = static_cast<std::uint32_t>(std::max<double>(
      1.0, std::ceil(config.min_support *
                     static_cast<double>(transactions.size()))));

  // Remap the live categories onto [0, n): flat arrays instead of hash
  // maps, and ascending dense order == ascending CategoryId order, so
  // results come out in the same size-then-lexicographic sequence as the
  // classic formulation.
  const DenseCategoryMap dense = build_dense_category_map(transactions);
  const std::size_t n = dense.size();
  if (n == 0) return result;

  // Every build-scratch buffer below (tidsets, pair counts, padded
  // bitset rows, candidate masks) bump-allocates from one arena and is
  // released wholesale when the mine returns.
  common::Arena arena(1u << 20);

  // L1: single-item counts in one dense array pass.
  std::vector<std::uint32_t> singles(n, 0);
  for (const Itemset& tx : transactions) {
    for (CategoryId item : tx) ++singles[dense.dense_of(item)];
  }
  // Frequent itemsets carry *dense* ids until the final mapping back;
  // levels are stored flat (stride k) so a retrain build does one
  // allocation per level instead of one per itemset.
  std::vector<CategoryId> frequent;  // flat, stride = current level
  std::size_t level = 1;
  for (std::size_t d = 0; d < n; ++d) {
    if (singles[d] >= min_count) {
      frequent.push_back(static_cast<CategoryId>(d));
      result.push_back({{static_cast<CategoryId>(d)}, singles[d]});
    }
  }

  if (config.max_items >= 2 && frequent.size() >= 2) {
    // L2 is counted vertically: one tidset bitmap per frequent single
    // (bit t set iff transaction t contains the item), pair support =
    // popcount of the AND, computed by the dispatched SIMD kernel.
    // Every pair of frequent singles is a valid candidate (the prune is
    // vacuous at k=2); counts accumulate into a triangular matrix so
    // the tid dimension can be chunked for cache residency while pairs
    // are still emitted in (i, j) lexicographic order.
    const std::size_t f = frequent.size();
    const std::size_t tid_words = (transactions.size() + 63) / 64;
    common::ArenaVector<std::uint64_t> tids{
        common::ArenaAllocator<std::uint64_t>(arena)};
    tids.assign(f * tid_words, 0);
    std::vector<CategoryId> single_to_rank(n, kInvalidCategory);
    for (std::size_t r = 0; r < f; ++r) {
      single_to_rank[frequent[r]] = static_cast<CategoryId>(r);
    }
    for (std::size_t t = 0; t < transactions.size(); ++t) {
      for (CategoryId item : transactions[t]) {
        const CategoryId rank = single_to_rank[dense.dense_of(item)];
        if (rank == kInvalidCategory) continue;
        tids[rank * tid_words + (t >> 6)] |= std::uint64_t{1} << (t & 63);
      }
    }
    const std::size_t n_pairs = f * (f - 1) / 2;
    common::ArenaVector<std::uint32_t> pair_counts{
        common::ArenaAllocator<std::uint32_t>(arena)};
    pair_counts.assign(n_pairs, 0);
    const auto pair_index = [f](std::size_t i, std::size_t j) {
      // Row-major upper triangle: pairs (i, *) start after the first i
      // rows' triangle.
      return i * (2 * f - i - 1) / 2 + (j - i - 1);
    };
    const auto& kernels = simd::active();
    for (std::size_t w0 = 0; w0 < tid_words; w0 += kTidChunkWords) {
      const std::size_t chunk = std::min(kTidChunkWords, tid_words - w0);
      for (std::size_t i = 0; i < f; ++i) {
        const std::uint64_t* a = tids.data() + i * tid_words + w0;
        std::uint32_t* row_counts = pair_counts.data() + pair_index(i, i + 1);
        for (std::size_t j = i + 1; j < f; ++j) {
          const std::uint64_t* b = tids.data() + j * tid_words + w0;
          row_counts[j - i - 1] += static_cast<std::uint32_t>(
              kernels.and_popcount(a, b, chunk));
        }
      }
    }
    std::vector<CategoryId> pairs;
    for (std::size_t i = 0; i < f; ++i) {
      for (std::size_t j = i + 1; j < f; ++j) {
        const std::uint32_t count = pair_counts[pair_index(i, j)];
        if (count >= min_count) {
          pairs.push_back(frequent[i]);
          pairs.push_back(frequent[j]);
          result.push_back({{frequent[i], frequent[j]}, count});
        }
      }
    }
    frequent = std::move(pairs);
    level = 2;
  }

  // L3+: classic join-and-prune candidate generation over the flat
  // dense-id levels; support counted horizontally with the cache-blocked
  // SIMD subset kernel over zero-padded fixed-width bitset rows.
  if (config.max_items >= 3 && frequent.size() >= 2 * level) {
    const std::size_t words = (n + 63) / 64;
    const std::size_t stride = padded_words(words);
    common::ArenaVector<std::uint64_t> rows{
        common::ArenaAllocator<std::uint64_t>(arena)};
    rows.assign(transactions.size() * stride, 0);
    for (std::size_t t = 0; t < transactions.size(); ++t) {
      std::uint64_t* row = rows.data() + t * stride;
      for (CategoryId item : transactions[t]) {
        const CategoryId d = dense.dense_of(item);
        // Dense ids index fixed-width rows; one out-of-range id would
        // corrupt a neighbouring transaction's bits.
        DML_DCHECK((d >> 6) < stride);
        row[d >> 6] |= std::uint64_t{1} << (d & 63);
      }
    }

    std::vector<CategoryId> candidates;   // flat, stride = level + 1
    std::vector<CategoryId> next;         // survivors, same stride
    common::ArenaVector<std::uint64_t> masks{
        common::ArenaAllocator<std::uint64_t>(arena)};
    common::ArenaVector<std::uint32_t> counts{
        common::ArenaAllocator<std::uint32_t>(arena)};
    Itemset subset_scratch;
    while (level + 1 <= config.max_items) {
      const std::size_t k = level + 1;
      const std::size_t n_prev = frequent.size() / level;
      if (n_prev < 2) break;
      candidates.clear();
      subset_scratch.resize(level);
      for (std::size_t i = 0; i < n_prev; ++i) {
        const CategoryId* a = frequent.data() + i * level;
        for (std::size_t j = i + 1; j < n_prev; ++j) {
          const CategoryId* b = frequent.data() + j * level;
          if (!same_prefix(a, b, level)) {
            // frequent is sorted lexicographically: once prefixes
            // diverge, no later j will share i's prefix.
            break;
          }
          // a and b share their first level-1 items and a[last] <
          // b[last] (lexicographic order), so the join is just an
          // append.
          const std::size_t base = candidates.size();
          candidates.resize(base + k);
          CategoryId* cand = candidates.data() + base;
          std::copy(a, a + level, cand);
          cand[level] = b[level - 1];
          if (!all_subsets_frequent(frequent, k, cand,
                                    subset_scratch.data())) {
            candidates.resize(base);
          }
        }
      }
      const std::size_t n_candidates = candidates.size() / k;
      if (n_candidates == 0) break;

      masks.assign(n_candidates * stride, 0);
      for (std::size_t c = 0; c < n_candidates; ++c) {
        std::uint64_t* mask = masks.data() + c * stride;
        const CategoryId* cand = candidates.data() + c * k;
        for (std::size_t i = 0; i < k; ++i) {
          mask[cand[i] >> 6] |= std::uint64_t{1} << (cand[i] & 63);
        }
      }
      counts.assign(n_candidates, 0);
      count_candidates(rows.data(), transactions.size(), stride,
                       masks.data(), n_candidates,
                       config.parallel_work_threshold, counts.data());

      next.clear();
      for (std::size_t c = 0; c < n_candidates; ++c) {
        if (counts[c] >= min_count) {
          const CategoryId* cand = candidates.data() + c * k;
          result.push_back({Itemset(cand, cand + k), counts[c]});
          next.insert(next.end(), cand, cand + k);
        }
      }
      frequent.swap(next);  // already lexicographically ordered
      level = k;
    }
  }

  // Map dense ids back to original categories.  The remap is monotone,
  // so sortedness and ordering are untouched; L1 entries were emitted
  // with dense ids too, so one pass rewrites everything.
  for (auto& fi : result) {
    for (CategoryId& item : fi.items) item = dense.to_original[item];
  }
  return result;
}

}  // namespace dml::learners
