#include "learners/apriori.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <optional>

#include "common/thread_pool.hpp"
#include "learners/transactions.hpp"

namespace dml::learners {
namespace {

/// Joins two size-k itemsets sharing their first k-1 items into a
/// size-k+1 candidate; nullopt if they don't share a prefix.
std::optional<Itemset> join(const Itemset& a, const Itemset& b) {
  if (a.size() != b.size() || a.empty()) return std::nullopt;
  for (std::size_t i = 0; i + 1 < a.size(); ++i) {
    if (a[i] != b[i]) return std::nullopt;
  }
  if (a.back() >= b.back()) return std::nullopt;
  Itemset out = a;
  out.push_back(b.back());
  return out;
}

/// Apriori pruning: every (k-1)-subset of the candidate must be frequent.
bool all_subsets_frequent(const Itemset& candidate,
                          const std::vector<Itemset>& frequent_prev) {
  Itemset subset(candidate.size() - 1);
  for (std::size_t skip = 0; skip < candidate.size(); ++skip) {
    std::size_t j = 0;
    for (std::size_t i = 0; i < candidate.size(); ++i) {
      if (i != skip) subset[j++] = candidate[i];
    }
    if (!std::binary_search(frequent_prev.begin(), frequent_prev.end(),
                            subset)) {
      return false;
    }
  }
  return true;
}

/// Counts candidate support with word-wise subset tests over the bitset
/// rows: transaction t supports candidate c iff every word of c's mask
/// is covered by t's row.  Transactions are chunked across the pool
/// (one task per chunk) with per-chunk count buffers, so there is no
/// write sharing and no per-index dispatch.
std::vector<std::uint32_t> count_support_bitset(
    const TransactionBitsets& bits, const std::vector<Itemset>& candidates,
    std::size_t parallel_threshold) {
  const std::size_t words = bits.words_per_row;
  const std::size_t rows = bits.rows();
  // Candidate masks, row-major like the transactions.
  std::vector<std::uint64_t> masks(candidates.size() * words, 0);
  for (std::size_t c = 0; c < candidates.size(); ++c) {
    std::uint64_t* mask = masks.data() + c * words;
    for (CategoryId d : candidates[c]) {
      mask[d >> 6] |= std::uint64_t{1} << (d & 63);
    }
  }

  auto count_range = [&](std::size_t lo, std::size_t hi,
                         std::uint32_t* counts) {
    for (std::size_t t = lo; t < hi; ++t) {
      const std::uint64_t* row = bits.row(t);
      for (std::size_t c = 0; c < candidates.size(); ++c) {
        if (bitset_contains(row, masks.data() + c * words, words)) {
          ++counts[c];
        }
      }
    }
  };

  const std::size_t work = rows * candidates.size();
  auto& pool = dml::ThreadPool::shared();
  if (work < parallel_threshold || pool.max_parallel_chunks() <= 1) {
    std::vector<std::uint32_t> counts(candidates.size(), 0);
    count_range(0, rows, counts.data());
    return counts;
  }
  std::vector<std::vector<std::uint32_t>> per_chunk(
      pool.max_parallel_chunks(),
      std::vector<std::uint32_t>(candidates.size(), 0));
  pool.parallel_for_ranges(0, rows,
                           [&](std::size_t chunk, std::size_t lo,
                               std::size_t hi) {
                             count_range(lo, hi, per_chunk[chunk].data());
                           });
  std::vector<std::uint32_t> counts(candidates.size(), 0);
  for (const auto& partial : per_chunk) {
    for (std::size_t c = 0; c < counts.size(); ++c) counts[c] += partial[c];
  }
  return counts;
}

}  // namespace

bool contains_sorted(const Itemset& superset, const Itemset& subset) {
  return std::includes(superset.begin(), superset.end(), subset.begin(),
                       subset.end());
}

std::vector<FrequentItemset> mine_frequent_itemsets(
    std::span<const Itemset> transactions, const AprioriConfig& config) {
  std::vector<FrequentItemset> result;
  if (transactions.empty() || config.max_items == 0) return result;
  const auto min_count = static_cast<std::uint32_t>(std::max<double>(
      1.0,
      std::ceil(config.min_support * static_cast<double>(transactions.size()))));

  // Remap the live categories onto [0, n): flat arrays instead of hash
  // maps, and ascending dense order == ascending CategoryId order, so
  // results come out in the same size-then-lexicographic sequence as the
  // classic formulation.
  const DenseCategoryMap dense = build_dense_category_map(transactions);
  const std::size_t n = dense.size();
  if (n == 0) return result;

  // L1: single-item counts in one dense array pass.
  std::vector<std::uint32_t> singles(n, 0);
  for (const Itemset& tx : transactions) {
    for (CategoryId item : tx) ++singles[dense.dense_of(item)];
  }
  // Frequent itemsets carry *dense* ids until the final mapping back.
  std::vector<Itemset> frequent;
  for (std::size_t d = 0; d < n; ++d) {
    if (singles[d] >= min_count) {
      frequent.push_back({static_cast<CategoryId>(d)});
      result.push_back({{static_cast<CategoryId>(d)}, singles[d]});
    }
  }

  if (config.max_items >= 2 && frequent.size() >= 2) {
    // L2 is counted vertically: one tidset bitmap per frequent single
    // (bit t set iff transaction t contains the item), pair support =
    // popcount of the AND.  Every pair of frequent singles is a valid
    // candidate (the prune is vacuous at k=2), in the same (i, j)
    // lexicographic order as join-based generation.
    const std::size_t f = frequent.size();
    const std::size_t tid_words = (transactions.size() + 63) / 64;
    std::vector<std::uint64_t> tids(f * tid_words, 0);
    std::vector<CategoryId> single_to_rank(n, kInvalidCategory);
    for (std::size_t r = 0; r < f; ++r) {
      single_to_rank[frequent[r][0]] = static_cast<CategoryId>(r);
    }
    for (std::size_t t = 0; t < transactions.size(); ++t) {
      for (CategoryId item : transactions[t]) {
        const CategoryId rank = single_to_rank[dense.dense_of(item)];
        if (rank == kInvalidCategory) continue;
        tids[rank * tid_words + (t >> 6)] |= std::uint64_t{1} << (t & 63);
      }
    }
    std::vector<Itemset> pairs;
    std::vector<std::uint32_t> pair_counts;
    for (std::size_t i = 0; i < f; ++i) {
      const std::uint64_t* a = tids.data() + i * tid_words;
      for (std::size_t j = i + 1; j < f; ++j) {
        const std::uint64_t* b = tids.data() + j * tid_words;
        std::uint32_t count = 0;
        for (std::size_t w = 0; w < tid_words; ++w) {
          count += static_cast<std::uint32_t>(std::popcount(a[w] & b[w]));
        }
        if (count >= min_count) {
          pairs.push_back({frequent[i][0], frequent[j][0]});
          pair_counts.push_back(count);
        }
      }
    }
    for (std::size_t c = 0; c < pairs.size(); ++c) {
      result.push_back({pairs[c], pair_counts[c]});
    }
    frequent = std::move(pairs);
  }

  // L3+: classic join-and-prune candidate generation over dense ids;
  // support counted horizontally with fixed-width bitset rows (at most
  // ceil(n/64) words per transaction).
  if (config.max_items >= 3 && frequent.size() >= 2) {
    const TransactionBitsets bits = encode_transaction_bitsets(
        transactions, dense);
    for (std::size_t level = 3;
         level <= config.max_items && frequent.size() >= 2; ++level) {
      std::vector<Itemset> candidates;
      for (std::size_t i = 0; i < frequent.size(); ++i) {
        for (std::size_t j = i + 1; j < frequent.size(); ++j) {
          auto candidate = join(frequent[i], frequent[j]);
          if (!candidate) {
            // frequent is sorted lexicographically: once prefixes
            // diverge, no later j will share i's prefix.
            break;
          }
          if (all_subsets_frequent(*candidate, frequent)) {
            candidates.push_back(std::move(*candidate));
          }
        }
      }
      if (candidates.empty()) break;

      const auto counts = count_support_bitset(
          bits, candidates, config.parallel_work_threshold);
      std::vector<Itemset> next;
      for (std::size_t c = 0; c < candidates.size(); ++c) {
        if (counts[c] >= min_count) {
          result.push_back({candidates[c], counts[c]});
          next.push_back(std::move(candidates[c]));
        }
      }
      frequent = std::move(next);  // already lexicographically ordered
    }
  }

  // Map dense ids back to original categories.  The remap is monotone,
  // so sortedness and ordering are untouched; L1 entries were emitted
  // with dense ids too, so one pass rewrites everything.
  for (auto& fi : result) {
    for (CategoryId& item : fi.items) item = dense.to_original[item];
  }
  return result;
}

}  // namespace dml::learners
