// Neural-network base learner — the second §7 future-work method.  Like
// the decision tree it classifies window features into "a failure
// follows within Wp"; it plugs into the ensemble unchanged.
#pragma once

#include "learners/base_learner.hpp"
#include "learners/neural_net.hpp"

namespace dml::learners {

struct NeuralNetLearnerConfig {
  NeuralNetConfig net;
  /// Output probability above which the rule warns.
  double probability_threshold = 0.5;
  double max_negative_ratio = 3.0;
  std::size_t min_positive_samples = 20;
};

class NeuralNetLearner final : public BaseLearner {
 public:
  explicit NeuralNetLearner(NeuralNetLearnerConfig config = {})
      : config_(config) {}

  RuleSource source() const override { return RuleSource::kNeuralNet; }

  std::vector<Rule> learn(std::span<const bgl::Event> training,
                          DurationSec window) const override;

  const NeuralNetLearnerConfig& config() const { return config_; }

 private:
  NeuralNetLearnerConfig config_;
};

}  // namespace dml::learners
