#include "learners/neural_net.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>

#include "common/rng.hpp"
#include "common/string_util.hpp"

namespace dml::learners {
namespace {

double sigmoid(double z) { return 1.0 / (1.0 + std::exp(-z)); }

std::optional<double> parse_double(std::string_view s) {
  char buf[64];
  if (s.size() >= sizeof(buf) || s.empty()) return std::nullopt;
  std::memcpy(buf, s.data(), s.size());
  buf[s.size()] = '\0';
  char* end = nullptr;
  const double value = std::strtod(buf, &end);
  if (end != buf + s.size()) return std::nullopt;
  return value;
}

void append_doubles(std::string& out, std::span<const double> values) {
  for (double v : values) {
    out += ';';
    char buf[48];
    std::snprintf(buf, sizeof(buf), "%.12g", v);
    out += buf;
  }
}

}  // namespace

std::vector<double> NeuralNet::standardize(
    const FeatureVector& features) const {
  std::vector<double> x(kNumFeatures);
  for (std::size_t i = 0; i < kNumFeatures; ++i) {
    x[i] = (features[i] - mean_[i]) / stdev_[i];
  }
  return x;
}

double NeuralNet::forward(std::span<const double> x) const {
  double z2 = b2_;
  for (std::size_t h = 0; h < hidden_; ++h) {
    double z1 = b1_[h];
    for (std::size_t i = 0; i < kNumFeatures; ++i) {
      z1 += w1_[h * kNumFeatures + i] * x[i];
    }
    z2 += w2_[h] * std::tanh(z1);
  }
  return sigmoid(z2);
}

double NeuralNet::predict(const FeatureVector& features) const {
  if (hidden_ == 0) return 0.0;
  return forward(standardize(features));
}

NeuralNet NeuralNet::fit(std::span<const LabelledSample> samples,
                         const NeuralNetConfig& config) {
  NeuralNet net;
  if (samples.empty() || config.hidden_units == 0) return net;
  net.hidden_ = config.hidden_units;

  // Per-feature standardization from the training set.
  net.mean_.assign(kNumFeatures, 0.0);
  net.stdev_.assign(kNumFeatures, 1.0);
  const auto n = static_cast<double>(samples.size());
  for (const auto& s : samples) {
    for (std::size_t i = 0; i < kNumFeatures; ++i) {
      net.mean_[i] += s.features[i];
    }
  }
  for (double& m : net.mean_) m /= n;
  std::vector<double> var(kNumFeatures, 0.0);
  for (const auto& s : samples) {
    for (std::size_t i = 0; i < kNumFeatures; ++i) {
      const double d = s.features[i] - net.mean_[i];
      var[i] += d * d;
    }
  }
  for (std::size_t i = 0; i < kNumFeatures; ++i) {
    net.stdev_[i] = std::max(1e-6, std::sqrt(var[i] / n));
  }

  // Pre-standardize once.
  std::vector<std::vector<double>> x;
  x.reserve(samples.size());
  for (const auto& s : samples) x.push_back(net.standardize(s.features));

  // Xavier-ish init from the seed.
  Rng rng(config.seed ^ 0x9e3779b97f4a7c15ULL);
  const std::size_t h = net.hidden_;
  const double scale1 = 1.0 / std::sqrt(static_cast<double>(kNumFeatures));
  const double scale2 = 1.0 / std::sqrt(static_cast<double>(h));
  net.w1_.resize(h * kNumFeatures);
  net.b1_.assign(h, 0.0);
  net.w2_.resize(h);
  for (double& w : net.w1_) w = rng.uniform(-scale1, scale1);
  for (double& w : net.w2_) w = rng.uniform(-scale2, scale2);

  // Full-batch gradient descent with momentum on cross-entropy.
  std::vector<double> vw1(net.w1_.size(), 0.0), vb1(h, 0.0), vw2(h, 0.0);
  double vb2 = 0.0;
  std::vector<double> hidden_out(h);
  for (int epoch = 0; epoch < config.epochs; ++epoch) {
    std::vector<double> gw1(net.w1_.size(), 0.0), gb1(h, 0.0), gw2(h, 0.0);
    double gb2 = 0.0, loss = 0.0;
    for (std::size_t s = 0; s < x.size(); ++s) {
      // Forward, caching hidden activations.
      double z2 = net.b2_;
      for (std::size_t j = 0; j < h; ++j) {
        double z1 = net.b1_[j];
        for (std::size_t i = 0; i < kNumFeatures; ++i) {
          z1 += net.w1_[j * kNumFeatures + i] * x[s][i];
        }
        hidden_out[j] = std::tanh(z1);
        z2 += net.w2_[j] * hidden_out[j];
      }
      const double p = sigmoid(z2);
      const double y = samples[s].positive ? 1.0 : 0.0;
      loss -= y * std::log(std::max(1e-12, p)) +
              (1.0 - y) * std::log(std::max(1e-12, 1.0 - p));
      // Backward: dL/dz2 = p - y.
      const double dz2 = p - y;
      gb2 += dz2;
      for (std::size_t j = 0; j < h; ++j) {
        gw2[j] += dz2 * hidden_out[j];
        const double dz1 =
            dz2 * net.w2_[j] * (1.0 - hidden_out[j] * hidden_out[j]);
        gb1[j] += dz1;
        for (std::size_t i = 0; i < kNumFeatures; ++i) {
          gw1[j * kNumFeatures + i] += dz1 * x[s][i];
        }
      }
    }
    net.training_loss_ = loss / n;

    const double lr = config.learning_rate / n;
    auto step = [&](std::vector<double>& w, std::vector<double>& v,
                    const std::vector<double>& g) {
      for (std::size_t i = 0; i < w.size(); ++i) {
        v[i] = config.momentum * v[i] -
               lr * (g[i] + config.weight_decay * n * w[i]);
        w[i] += v[i];
      }
    };
    step(net.w1_, vw1, gw1);
    step(net.b1_, vb1, gb1);
    step(net.w2_, vw2, gw2);
    vb2 = config.momentum * vb2 - lr * gb2;
    net.b2_ += vb2;
  }
  return net;
}

std::string NeuralNet::serialize() const {
  std::string out = std::to_string(hidden_);
  append_doubles(out, mean_);
  append_doubles(out, stdev_);
  append_doubles(out, w1_);
  append_doubles(out, b1_);
  append_doubles(out, w2_);
  append_doubles(out, std::span<const double>(&b2_, 1));
  char buf[32];
  std::snprintf(buf, sizeof(buf), ";%.12g", training_loss_);
  out += buf;
  return out;
}

std::optional<NeuralNet> NeuralNet::deserialize(std::string_view text) {
  const auto fields = split(text, ';');
  if (fields.size() < 2) return std::nullopt;
  NeuralNet net;
  const auto hidden = parse_double(fields[0]);
  if (!hidden || *hidden < 1.0 || *hidden > 4096.0) return std::nullopt;
  net.hidden_ = static_cast<std::size_t>(*hidden);
  const std::size_t h = net.hidden_;
  const std::size_t expected =
      1 + kNumFeatures * 2 + h * kNumFeatures + h + h + 1 + 1;
  if (fields.size() != expected) return std::nullopt;

  std::size_t cursor = 1;
  auto read_block = [&](std::vector<double>& out,
                        std::size_t count) -> bool {
    out.resize(count);
    for (std::size_t i = 0; i < count; ++i) {
      const auto value = parse_double(fields[cursor++]);
      if (!value) return false;
      out[i] = *value;
    }
    return true;
  };
  if (!read_block(net.mean_, kNumFeatures)) return std::nullopt;
  if (!read_block(net.stdev_, kNumFeatures)) return std::nullopt;
  if (!read_block(net.w1_, h * kNumFeatures)) return std::nullopt;
  if (!read_block(net.b1_, h)) return std::nullopt;
  if (!read_block(net.w2_, h)) return std::nullopt;
  const auto b2 = parse_double(fields[cursor++]);
  const auto loss = parse_double(fields[cursor++]);
  if (!b2 || !loss) return std::nullopt;
  net.b2_ = *b2;
  net.training_loss_ = *loss;
  for (double s : net.stdev_) {
    if (s <= 0.0) return std::nullopt;
  }
  return net;
}

}  // namespace dml::learners
