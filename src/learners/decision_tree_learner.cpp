#include "learners/decision_tree_learner.hpp"

namespace dml::learners {

std::vector<Rule> DecisionTreeLearner::learn(
    std::span<const bgl::Event> training, DurationSec window) const {
  std::vector<Rule> rules;
  const auto samples =
      build_labelled_samples(training, window, config_.max_negative_ratio);
  std::size_t positives = 0;
  for (const auto& sample : samples) positives += sample.positive ? 1 : 0;
  if (positives < config_.min_positive_samples) return rules;

  DecisionTreeRule rule;
  rule.tree = DecisionTree::fit(samples, config_.tree);
  rule.probability_threshold = config_.probability_threshold;
  // A degenerate tree (single leaf) either never fires or always fires;
  // neither is a usable rule.
  if (rule.tree.node_count() <= 1) return rules;
  rules.emplace_back(Rule::Body(std::move(rule)));
  return rules;
}

}  // namespace dml::learners
