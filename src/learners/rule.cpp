#include "learners/rule.hpp"

#include <cmath>
#include <cstdio>

namespace dml::learners {

std::string_view to_string(RuleSource source) {
  switch (source) {
    case RuleSource::kAssociation: return "association";
    case RuleSource::kStatistical: return "statistical";
    case RuleSource::kDistribution: return "distribution";
    case RuleSource::kDecisionTree: return "decision-tree";
    case RuleSource::kNeuralNet: return "neural-net";
    case RuleSource::kCorrelation: return "correlation";
  }
  return "unknown";
}

RuleSource Rule::source() const {
  struct Visitor {
    RuleSource operator()(const AssociationRule&) const {
      return RuleSource::kAssociation;
    }
    RuleSource operator()(const StatisticalRule&) const {
      return RuleSource::kStatistical;
    }
    RuleSource operator()(const DistributionRule&) const {
      return RuleSource::kDistribution;
    }
    RuleSource operator()(const DecisionTreeRule&) const {
      return RuleSource::kDecisionTree;
    }
    RuleSource operator()(const NeuralNetRule&) const {
      return RuleSource::kNeuralNet;
    }
    RuleSource operator()(const CorrelationChainRule&) const {
      return RuleSource::kCorrelation;
    }
  };
  return std::visit(Visitor{}, body_);
}

std::string Rule::identity() const {
  struct Visitor {
    std::string operator()(const AssociationRule& r) const {
      std::string id = "AR:";
      for (CategoryId c : r.antecedent) {
        id += std::to_string(c);
        id += ',';
      }
      id += "->";
      id += std::to_string(r.consequent);
      return id;
    }
    std::string operator()(const StatisticalRule& r) const {
      return "SR:k=" + std::to_string(r.k);
    }
    std::string operator()(const DistributionRule& r) const {
      // Bucket the trigger to the hour so refits with materially similar
      // behaviour count as the same rule.
      return std::string("PD:") + std::string(r.model.family_name()) + ":h" +
             std::to_string(r.elapsed_trigger / kSecondsPerHour);
    }
    std::string operator()(const DecisionTreeRule& r) const {
      // Coarse structural identity: refits with the same shape count as
      // the same rule for churn accounting.
      return "DT:n" + std::to_string(r.tree.node_count()) + ":d" +
             std::to_string(r.tree.depth());
    }
    std::string operator()(const NeuralNetRule& r) const {
      return "NN:h" + std::to_string(r.net.hidden_units());
    }
    std::string operator()(const CorrelationChainRule& r) const {
      // Order matters: the same stage set in a different order is a
      // different chain, so '>' separators (not the AR form's commas).
      std::string id = "CC:";
      for (std::size_t i = 0; i < r.chain.size(); ++i) {
        if (i != 0) id += '>';
        id += std::to_string(r.chain[i]);
      }
      id += "->";
      id += std::to_string(r.consequent);
      return id;
    }
  };
  return std::visit(Visitor{}, body_);
}

std::string Rule::describe(const bgl::Taxonomy& taxonomy) const {
  struct Visitor {
    const bgl::Taxonomy& tax;
    std::string operator()(const AssociationRule& r) const {
      std::string out;
      for (std::size_t i = 0; i < r.antecedent.size(); ++i) {
        if (i != 0) out += ", ";
        out += tax.category(r.antecedent[i]).name;
      }
      char buf[64];
      std::snprintf(buf, sizeof(buf), ": %.2f", r.confidence);
      out += " -> " + tax.category(r.consequent).name + buf;
      return out;
    }
    std::string operator()(const StatisticalRule& r) const {
      char buf[96];
      std::snprintf(buf, sizeof(buf),
                    "%d failures within window -> another failure: %.2f", r.k,
                    r.probability);
      return buf;
    }
    std::string operator()(const DistributionRule& r) const {
      char buf[128];
      std::snprintf(buf, sizeof(buf),
                    "%s CDF(elapsed) > %.2f (elapsed >= %lld s) -> failure",
                    std::string(r.model.family_name()).c_str(),
                    r.cdf_threshold,
                    static_cast<long long>(r.elapsed_trigger));
      return buf;
    }
    std::string operator()(const DecisionTreeRule& r) const {
      char buf[128];
      std::snprintf(buf, sizeof(buf),
                    "decision tree (%zu nodes, depth %d), p >= %.2f -> "
                    "failure",
                    r.tree.node_count(), r.tree.depth(),
                    r.probability_threshold);
      return buf;
    }
    std::string operator()(const NeuralNetRule& r) const {
      char buf[128];
      std::snprintf(buf, sizeof(buf),
                    "neural net (%zu hidden units), p >= %.2f -> failure",
                    r.net.hidden_units(), r.probability_threshold);
      return buf;
    }
    std::string operator()(const CorrelationChainRule& r) const {
      std::string out;
      for (std::size_t i = 0; i < r.chain.size(); ++i) {
        if (i != 0) out += " > ";
        out += tax.category(r.chain[i]).name;
      }
      char buf[64];
      std::snprintf(buf, sizeof(buf), ": %.2f", r.confidence);
      out += " => " + tax.category(r.consequent).name + buf;
      return out;
    }
  };
  return std::visit(Visitor{taxonomy}, body_);
}

}  // namespace dml::learners
