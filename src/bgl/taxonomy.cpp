#include "bgl/taxonomy.hpp"

#include <algorithm>
#include <cctype>
#include <stdexcept>

#include "common/check.hpp"
#include "common/string_util.hpp"

namespace dml::bgl {
namespace {

std::string make_variant(std::string_view base, int variant) {
  if (variant == 0) return std::string(base);
  return std::string(base) + " (code " + std::to_string(variant) + ")";
}

std::string slug(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    if (c == ' ' || c == '(' || c == ')') {
      if (!out.empty() && out.back() != '-') out.push_back('-');
    } else {
      out.push_back(static_cast<char>(
          std::tolower(static_cast<unsigned char>(c))));
    }
  }
  while (!out.empty() && out.back() == '-') out.pop_back();
  return out;
}

/// Seed message stems for one facility; expanded cyclically with variant
/// codes until the Table 3 category count is reached.
struct FacilitySpec {
  Facility facility;
  EventType event_type;
  LocationKind origin;
  int num_fatal;     // true failures
  int num_nonfatal;  // includes nominally-fatal demotions
  int num_nominal;   // of the non-fatal count, how many carry FATAL severity
  std::vector<std::string_view> fatal_stems;
  std::vector<std::string_view> warning_stems;
};

std::vector<FacilitySpec> facility_specs() {
  // Counts follow Table 3 exactly: 69 fatal, 150 non-fatal, 219 total.
  // Stems follow the examples quoted in the paper (§2.1, §4.1, Table 3)
  // and the published Blue Gene/L log studies.
  std::vector<FacilitySpec> specs;

  specs.push_back({Facility::kApp, EventType::kAppOut,
                   LocationKind::kComputeChip, 10, 7, 0,
                   {"load program failure", "function call failure",
                    "application segmentation fault",
                    "ciod communication failure socket closed",
                    "application assertion failure"},
                   {"application warning retry exceeded",
                    "ciod io stream warning", "program image load info"}});

  specs.push_back({Facility::kBglMaster, EventType::kMmcs,
                   LocationKind::kServiceCard, 2, 2, 0,
                   {"bglmaster segmentation failure",
                    "bglmaster heartbeat failure"},
                   {"bglmaster restart info", "bglmaster startup info"}});

  specs.push_back({Facility::kCmcs, EventType::kMmcs,
                   LocationKind::kServiceCard, 0, 4, 0,
                   {},
                   {"cmcs command info", "cmcs exit info",
                    "cmcs polling agent info", "cmcs db write warning"}});

  specs.push_back({Facility::kDiscovery, EventType::kRas,
                   LocationKind::kNodeCard, 0, 24, 0,
                   {},
                   {"nodecard communication warning",
                    "servicecard read error", "nodecard vpd read warning",
                    "linkcard presence warning", "clock card status info",
                    "fan module discovery warning",
                    "power module discovery warning",
                    "ido packet discovery warning"}});

  specs.push_back({Facility::kHardware, EventType::kRas,
                   LocationKind::kMidplane, 1, 12, 1,
                   {"midplane switch failure"},
                   {"midplane service warning", "power supply voltage warning",
                    "fan speed warning", "temperature sensor warning",
                    "bulk power module error", "clock signal warning"}});

  specs.push_back({Facility::kKernel, EventType::kRas,
                   LocationKind::kComputeChip, 46, 90, 6,
                   {"uncorrectable torus error",
                    "uncorrectable error detected in edram bank",
                    "broadcast failure", "cache failure", "cpu failure",
                    "node map file error", "kernel panic",
                    "tree receiver failure", "torus sender failure",
                    "instruction address parity error",
                    "data storage interrupt failure",
                    "double hummer exception", "l3 ecc uncorrectable error",
                    "scratch ram uncorrectable error"},
                   {"correctable error detected in edram bank",
                    "torus retransmission warning", "l1 parity warning",
                    "ddr correctable ecc warning", "tree packet warning",
                    "rts tree warning", "instruction cache parity warning",
                    "data cache correctable warning", "torus crc warning",
                    "memory scrub info", "kernel shutdown info",
                    "rts kernel boot info"}});

  specs.push_back({Facility::kLinkCard, EventType::kRas,
                   LocationKind::kLinkCard, 1, 0, 0,
                   {"linkcard failure"},
                   {}});

  specs.push_back({Facility::kMmcs, EventType::kMmcs,
                   LocationKind::kServiceCard, 0, 5, 0,
                   {},
                   {"control network mmcs error", "mmcs boot info",
                    "mmcs block allocation info", "mmcs console warning",
                    "idoproxy communication warning"}});

  specs.push_back({Facility::kMonitor, EventType::kRas,
                   LocationKind::kNodeCard, 9, 5, 1,
                   {"node card temperature error",
                    "node card power failure", "service card monitor failure",
                    "fan failure detected by monitor"},
                   {"temperature over threshold warning",
                    "voltage monitor warning", "monitor sample info"}});

  specs.push_back({Facility::kServNet, EventType::kRas,
                   LocationKind::kServiceCard, 0, 1, 0,
                   {},
                   {"system operation error"}});

  return specs;
}

}  // namespace

std::string_view to_string(Facility f) {
  switch (f) {
    case Facility::kApp: return "APP";
    case Facility::kBglMaster: return "BGLMASTER";
    case Facility::kCmcs: return "CMCS";
    case Facility::kDiscovery: return "DISCOVERY";
    case Facility::kHardware: return "HARDWARE";
    case Facility::kKernel: return "KERNEL";
    case Facility::kLinkCard: return "LINKCARD";
    case Facility::kMmcs: return "MMCS";
    case Facility::kMonitor: return "MONITOR";
    case Facility::kServNet: return "SERV_NET";
  }
  return "UNKNOWN";
}

std::optional<Facility> facility_from_string(std::string_view text) {
  for (int i = 0; i < kNumFacilities; ++i) {
    const auto f = static_cast<Facility>(i);
    if (text == to_string(f)) return f;
  }
  return std::nullopt;
}

std::string_view to_string(EventType t) {
  switch (t) {
    case EventType::kRas: return "RAS";
    case EventType::kMmcs: return "MMCS";
    case EventType::kAppOut: return "APPOUT";
  }
  return "UNKNOWN";
}

std::optional<EventType> event_type_from_string(std::string_view text) {
  if (text == "RAS") return EventType::kRas;
  if (text == "MMCS") return EventType::kMmcs;
  if (text == "APPOUT") return EventType::kAppOut;
  return std::nullopt;
}

Taxonomy::Taxonomy() : by_facility_(kNumFacilities) {
  const auto specs = facility_specs();

  auto add_category = [this](Facility facility, EventType event_type,
                             LocationKind origin, Severity severity,
                             bool fatal, bool nominal, std::string pattern) {
    EventCategory cat;
    cat.id = static_cast<CategoryId>(categories_.size());
    cat.facility = facility;
    cat.event_type = event_type;
    cat.origin = origin;
    cat.severity = severity;
    cat.fatal = fatal;
    cat.nominally_fatal = nominal;
    cat.name = std::string(to_string(facility)) + "." + slug(pattern);
    cat.pattern = std::move(pattern);
    by_facility_[static_cast<std::size_t>(facility)].push_back(cat.id);
    (fatal ? fatal_ids_ : nonfatal_ids_).push_back(cat.id);
    categories_.push_back(std::move(cat));
  };

  for (const auto& spec : specs) {
    // True fatal categories: severity alternates FATAL / FAILURE.
    for (int i = 0; i < spec.num_fatal; ++i) {
      const auto& stem =
          spec.fatal_stems[static_cast<std::size_t>(i) %
                           spec.fatal_stems.size()];
      const int variant =
          i / static_cast<int>(spec.fatal_stems.size());
      const Severity sev =
          (i % 2 == 0) ? Severity::kFatal : Severity::kFailure;
      add_category(spec.facility, spec.event_type, spec.origin, sev,
                   /*fatal=*/true, /*nominal=*/false,
                   make_variant(stem, variant));
    }
    // Nominally-fatal categories: FATAL severity, demoted to non-fatal.
    for (int i = 0; i < spec.num_nominal; ++i) {
      const auto& stem =
          spec.warning_stems[static_cast<std::size_t>(i) %
                             spec.warning_stems.size()];
      add_category(spec.facility, spec.event_type, spec.origin,
                   Severity::kFatal, /*fatal=*/false, /*nominal=*/true,
                   make_variant(stem, 90 + i));
    }
    // Plain non-fatal categories: severities cycle INFO..ERROR.
    const int plain = spec.num_nonfatal - spec.num_nominal;
    static constexpr Severity kCycle[] = {Severity::kWarning, Severity::kInfo,
                                          Severity::kSevere, Severity::kError};
    for (int i = 0; i < plain; ++i) {
      const auto& stem =
          spec.warning_stems[static_cast<std::size_t>(i) %
                             spec.warning_stems.size()];
      const int variant =
          i / static_cast<int>(spec.warning_stems.size());
      add_category(spec.facility, spec.event_type, spec.origin,
                   kCycle[i % 4], /*fatal=*/false, /*nominal=*/false,
                   make_variant(stem, variant));
    }
  }
  // Table 3 pins the taxonomy: 69 fatal + 150 non-fatal = 219
  // categories.  Everything downstream (CategoryId tables, golden logs,
  // the dense remap) is sized off these counts, so a drifted spec must
  // fail here, not as silent misclassification later.
  DML_CHECK_MSG(fatal_ids_.size() == 69, "Table 3: 69 fatal categories");
  DML_CHECK_MSG(nonfatal_ids_.size() == 150,
                "Table 3: 150 non-fatal categories");
  DML_CHECK_MSG(categories_.size() == 219, "Table 3: 219 categories total");
}

const EventCategory& Taxonomy::category(CategoryId id) const {
  if (id >= categories_.size()) {
    throw std::out_of_range("Taxonomy::category: bad id");
  }
  return categories_[id];
}

const std::vector<CategoryId>& Taxonomy::facility_ids(Facility f) const {
  return by_facility_[static_cast<std::size_t>(f)];
}

std::optional<CategoryId> Taxonomy::find_by_name(std::string_view name) const {
  for (const auto& cat : categories_) {
    if (cat.name == name) return cat.id;
  }
  return std::nullopt;
}

std::optional<CategoryId> Taxonomy::classify(
    Facility facility, Severity severity, std::string_view entry_data) const {
  // Longest-pattern match wins: "uncorrectable error detected in edram
  // bank (code 1)" must not be shadowed by its un-suffixed sibling.
  const EventCategory* best = nullptr;
  for (CategoryId id : facility_ids(facility)) {
    const EventCategory& cat = categories_[id];
    if (cat.severity != severity) continue;
    if (entry_data.find(cat.pattern) == std::string_view::npos) continue;
    if (best == nullptr || cat.pattern.size() > best->pattern.size()) {
      best = &cat;
    }
  }
  if (best == nullptr) return std::nullopt;
  return best->id;
}

std::vector<Taxonomy::FacilityCount> Taxonomy::facility_counts() const {
  std::vector<FacilityCount> counts;
  counts.reserve(kNumFacilities);
  for (int i = 0; i < kNumFacilities; ++i) {
    FacilityCount fc;
    fc.facility = static_cast<Facility>(i);
    for (CategoryId id : by_facility_[static_cast<std::size_t>(i)]) {
      if (categories_[id].fatal) {
        ++fc.fatal;
      } else {
        ++fc.nonfatal;
      }
    }
    counts.push_back(fc);
  }
  return counts;
}

const Taxonomy& taxonomy() {
  static const Taxonomy instance;
  return instance;
}

}  // namespace dml::bgl
