// The hierarchical event taxonomy of the Blue Gene/L RAS logs (paper
// §3.1, Table 3): ten high-level facilities, refined by Severity and
// Entry Data into 219 low-level categories — 69 fatal and 150 non-fatal.
//
// A handful of categories carry FATAL/FAILURE severity in the raw log but
// are *not* true failures ("fake" fatal events per Oliner & Stearley; the
// paper removed them after consulting administrators).  They are flagged
// `nominally_fatal` here and counted among the 150 non-fatal categories.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "bgl/location.hpp"
#include "common/severity.hpp"
#include "common/types.hpp"

namespace dml::bgl {

enum class Facility : std::uint8_t {
  kApp = 0,
  kBglMaster = 1,
  kCmcs = 2,
  kDiscovery = 3,
  kHardware = 4,
  kKernel = 5,
  kLinkCard = 6,
  kMmcs = 7,
  kMonitor = 8,
  kServNet = 9,
};

inline constexpr int kNumFacilities = 10;

std::string_view to_string(Facility f);
std::optional<Facility> facility_from_string(std::string_view text);

/// The mechanism through which an event is recorded (Table 1, EVENT TYPE).
enum class EventType : std::uint8_t {
  kRas = 0,      // hardware/kernel RAS path via the service card
  kMmcs = 1,     // control-system originated
  kAppOut = 2,   // application stdout/stderr capture
};

std::string_view to_string(EventType t);
std::optional<EventType> event_type_from_string(std::string_view text);

/// One low-level event category.
struct EventCategory {
  CategoryId id = kInvalidCategory;
  Facility facility = Facility::kKernel;
  Severity severity = Severity::kInfo;
  EventType event_type = EventType::kRas;
  /// True failure: the prediction target set (69 categories).
  bool fatal = false;
  /// Severity says FATAL/FAILURE but administrators demoted it.
  bool nominally_fatal = false;
  /// Stable machine-readable name, e.g. "kernel.torus.uncorrectable-error".
  std::string name;
  /// Distinctive substring the categorizer matches inside ENTRY DATA.
  std::string pattern;
  /// Where events of this category originate.
  LocationKind origin = LocationKind::kComputeChip;
};

/// Immutable dictionary of all categories, with lookup indices.
class Taxonomy {
 public:
  Taxonomy();

  const std::vector<EventCategory>& categories() const { return categories_; }
  const EventCategory& category(CategoryId id) const;
  std::size_t size() const { return categories_.size(); }

  /// Ids of all true-fatal categories (the 69 prediction targets).
  const std::vector<CategoryId>& fatal_ids() const { return fatal_ids_; }
  /// Ids of all non-fatal categories (including nominally-fatal ones).
  const std::vector<CategoryId>& nonfatal_ids() const { return nonfatal_ids_; }
  /// Ids belonging to one facility.
  const std::vector<CategoryId>& facility_ids(Facility f) const;

  std::optional<CategoryId> find_by_name(std::string_view name) const;

  /// Classifies a raw record's (facility, severity, entry data) into a
  /// category by longest-pattern substring match; nullopt if no category
  /// of that facility matches.
  std::optional<CategoryId> classify(Facility facility, Severity severity,
                                     std::string_view entry_data) const;

  struct FacilityCount {
    Facility facility;
    int fatal = 0;
    int nonfatal = 0;
  };
  /// Fatal / non-fatal category counts per facility (Table 3).
  std::vector<FacilityCount> facility_counts() const;

 private:
  std::vector<EventCategory> categories_;
  std::vector<CategoryId> fatal_ids_;
  std::vector<CategoryId> nonfatal_ids_;
  std::vector<std::vector<CategoryId>> by_facility_;
};

/// Process-wide shared taxonomy (construction is deterministic).
const Taxonomy& taxonomy();

}  // namespace dml::bgl
