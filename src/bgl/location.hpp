// Blue Gene/L packaging model (paper §2.1, Figure 2):
//
//   rack -> 2 midplanes -> 16 node cards -> 16 compute cards -> 2 chips
//
// A midplane therefore carries 512 compute chips (1,024 processors) and is
// additionally populated with I/O nodes, one service card, and link cards.
// Locations are encoded into a 32-bit id so records stay small and
// hashable; the text codec renders the familiar "R00-M1-N07-C12-J1" shape.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace dml::bgl {

enum class LocationKind : std::uint8_t {
  kComputeChip = 0,  // R-M-N-C-J
  kIoNode = 1,       // R-M-I
  kServiceCard = 2,  // R-M-S
  kLinkCard = 3,     // R-M-L
  kNodeCard = 4,     // R-M-N (card-level events, e.g. DISCOVERY)
  kMidplane = 5,     // R-M   (midplane-scope events)
};

std::string_view to_string(LocationKind kind);

/// Packed location identifier.  Field layout (LSB first):
///   bits 0     : chip   (0..1)
///   bits 1-4   : compute card (0..15)
///   bits 5-8   : node card / link card / io-node index
///   bits 9     : midplane (0..1)
///   bits 10-17 : rack (0..255)
///   bits 18-20 : kind
class Location {
 public:
  Location() = default;

  static Location compute_chip(int rack, int midplane, int node_card,
                               int compute_card, int chip);
  static Location io_node(int rack, int midplane, int index);
  static Location service_card(int rack, int midplane);
  static Location link_card(int rack, int midplane, int index);
  static Location node_card(int rack, int midplane, int index);
  static Location midplane_scope(int rack, int midplane);

  LocationKind kind() const;
  int rack() const;
  int midplane() const;
  /// node-card / io-node / link-card index depending on kind.
  int card() const;
  int compute_card() const;
  int chip() const;

  std::uint32_t packed() const { return bits_; }
  static Location from_packed(std::uint32_t bits) { return Location(bits); }

  /// The node card containing this chip (or the location itself when it
  /// already identifies a card-or-coarser scope).  Used by spatial
  /// filtering and by the generator's duplication model.
  Location enclosing_node_card() const;
  Location enclosing_midplane() const;

  std::string to_string() const;
  static std::optional<Location> parse(std::string_view text);

  friend bool operator==(const Location&, const Location&) = default;
  friend auto operator<=>(const Location&, const Location&) = default;

 private:
  explicit Location(std::uint32_t bits) : bits_(bits) {}

  std::uint32_t bits_ = 0;
};

struct LocationHash {
  std::size_t operator()(const Location& loc) const {
    // splitmix-style avalanche of the packed bits.
    std::uint64_t z = loc.packed() + 0x9e3779b97f4a7c15ULL;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return static_cast<std::size_t>(z ^ (z >> 31));
  }
};

/// Static description of one installation (ANL: 1 rack; SDSC: 3 racks).
struct MachineConfig {
  std::string name;
  int racks = 1;
  int io_nodes_per_midplane = 16;

  int midplanes() const { return racks * 2; }
  int compute_nodes() const { return racks * 1024; }  // dual-core nodes
  int io_nodes() const { return midplanes() * io_nodes_per_midplane; }

  /// The ANL Blue Gene/L: one rack, 1,024 compute nodes, 32 I/O nodes.
  static MachineConfig anl();
  /// The SDSC Blue Gene/L: three racks, 3,072 compute nodes, 384 I/O
  /// nodes (data-intensive configuration).
  static MachineConfig sdsc();
};

/// All node cards of a machine, in deterministic order.
std::vector<Location> enumerate_node_cards(const MachineConfig& config);

}  // namespace dml::bgl
