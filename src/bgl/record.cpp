#include "bgl/record.hpp"

namespace dml::bgl {

std::vector<TimeSec> fatal_times(const std::vector<Event>& events) {
  std::vector<TimeSec> times;
  for (const Event& e : events) {
    if (e.fatal) times.push_back(e.time);
  }
  return times;
}

std::size_t count_fatal_between(const std::vector<Event>& events,
                                TimeSec begin, TimeSec end) {
  std::size_t count = 0;
  for (const Event& e : events) {
    if (e.fatal && e.time >= begin && e.time < end) ++count;
  }
  return count;
}

}  // namespace dml::bgl
