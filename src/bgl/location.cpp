#include "bgl/location.hpp"

#include <cstdio>

#include "common/string_util.hpp"

namespace dml::bgl {
namespace {

constexpr std::uint32_t kChipShift = 0;
constexpr std::uint32_t kComputeCardShift = 1;
constexpr std::uint32_t kCardShift = 5;
constexpr std::uint32_t kMidplaneShift = 9;
constexpr std::uint32_t kRackShift = 10;
constexpr std::uint32_t kKindShift = 18;

std::uint32_t pack(LocationKind kind, int rack, int midplane, int card,
                   int compute_card, int chip) {
  return (static_cast<std::uint32_t>(chip) << kChipShift) |
         (static_cast<std::uint32_t>(compute_card) << kComputeCardShift) |
         (static_cast<std::uint32_t>(card) << kCardShift) |
         (static_cast<std::uint32_t>(midplane) << kMidplaneShift) |
         (static_cast<std::uint32_t>(rack) << kRackShift) |
         (static_cast<std::uint32_t>(kind) << kKindShift);
}

std::optional<int> parse_component(std::string_view part, char tag) {
  if (part.size() < 2 || part[0] != tag) return std::nullopt;
  int value = 0;
  for (char c : part.substr(1)) {
    if (c < '0' || c > '9') return std::nullopt;
    value = value * 10 + (c - '0');
  }
  return value;
}

}  // namespace

std::string_view to_string(LocationKind kind) {
  switch (kind) {
    case LocationKind::kComputeChip: return "compute-chip";
    case LocationKind::kIoNode: return "io-node";
    case LocationKind::kServiceCard: return "service-card";
    case LocationKind::kLinkCard: return "link-card";
    case LocationKind::kNodeCard: return "node-card";
    case LocationKind::kMidplane: return "midplane";
  }
  return "unknown";
}

Location Location::compute_chip(int rack, int midplane, int node_card,
                                int compute_card, int chip) {
  return Location(pack(LocationKind::kComputeChip, rack, midplane, node_card,
                       compute_card, chip));
}
Location Location::io_node(int rack, int midplane, int index) {
  return Location(pack(LocationKind::kIoNode, rack, midplane, index, 0, 0));
}
Location Location::service_card(int rack, int midplane) {
  return Location(pack(LocationKind::kServiceCard, rack, midplane, 0, 0, 0));
}
Location Location::link_card(int rack, int midplane, int index) {
  return Location(pack(LocationKind::kLinkCard, rack, midplane, index, 0, 0));
}
Location Location::node_card(int rack, int midplane, int index) {
  return Location(pack(LocationKind::kNodeCard, rack, midplane, index, 0, 0));
}
Location Location::midplane_scope(int rack, int midplane) {
  return Location(pack(LocationKind::kMidplane, rack, midplane, 0, 0, 0));
}

LocationKind Location::kind() const {
  return static_cast<LocationKind>((bits_ >> kKindShift) & 0x7u);
}
int Location::rack() const {
  return static_cast<int>((bits_ >> kRackShift) & 0xffu);
}
int Location::midplane() const {
  return static_cast<int>((bits_ >> kMidplaneShift) & 0x1u);
}
int Location::card() const {
  return static_cast<int>((bits_ >> kCardShift) & 0xfu);
}
int Location::compute_card() const {
  return static_cast<int>((bits_ >> kComputeCardShift) & 0xfu);
}
int Location::chip() const {
  return static_cast<int>((bits_ >> kChipShift) & 0x1u);
}

Location Location::enclosing_node_card() const {
  if (kind() == LocationKind::kComputeChip) {
    return node_card(rack(), midplane(), card());
  }
  return *this;
}

Location Location::enclosing_midplane() const {
  return midplane_scope(rack(), midplane());
}

std::string Location::to_string() const {
  char buf[40];
  switch (kind()) {
    case LocationKind::kComputeChip:
      std::snprintf(buf, sizeof(buf), "R%02d-M%d-N%02d-C%02d-J%d", rack(),
                    midplane(), card(), compute_card(), chip());
      break;
    case LocationKind::kIoNode:
      std::snprintf(buf, sizeof(buf), "R%02d-M%d-I%02d", rack(), midplane(),
                    card());
      break;
    case LocationKind::kServiceCard:
      std::snprintf(buf, sizeof(buf), "R%02d-M%d-S", rack(), midplane());
      break;
    case LocationKind::kLinkCard:
      std::snprintf(buf, sizeof(buf), "R%02d-M%d-L%d", rack(), midplane(),
                    card());
      break;
    case LocationKind::kNodeCard:
      std::snprintf(buf, sizeof(buf), "R%02d-M%d-N%02d", rack(), midplane(),
                    card());
      break;
    case LocationKind::kMidplane:
      std::snprintf(buf, sizeof(buf), "R%02d-M%d", rack(), midplane());
      break;
    default:
      return "R??";
  }
  return buf;
}

std::optional<Location> Location::parse(std::string_view text) {
  const auto parts = dml::split(text, '-');
  if (parts.size() < 2 || parts.size() > 5) return std::nullopt;
  const auto rack = parse_component(parts[0], 'R');
  const auto midplane = parse_component(parts[1], 'M');
  if (!rack || !midplane || *midplane > 1) return std::nullopt;

  if (parts.size() == 2) return midplane_scope(*rack, *midplane);

  if (parts.size() == 3) {
    if (parts[2] == "S") return service_card(*rack, *midplane);
    if (auto io = parse_component(parts[2], 'I')) {
      return io_node(*rack, *midplane, *io);
    }
    if (auto link = parse_component(parts[2], 'L')) {
      if (*link > 15) return std::nullopt;
      return link_card(*rack, *midplane, *link);
    }
    if (auto nc = parse_component(parts[2], 'N')) {
      if (*nc > 15) return std::nullopt;
      return node_card(*rack, *midplane, *nc);
    }
    return std::nullopt;
  }

  if (parts.size() == 5) {
    const auto nc = parse_component(parts[2], 'N');
    const auto cc = parse_component(parts[3], 'C');
    const auto chip = parse_component(parts[4], 'J');
    if (!nc || !cc || !chip) return std::nullopt;
    if (*nc > 15 || *cc > 15 || *chip > 1) return std::nullopt;
    return compute_chip(*rack, *midplane, *nc, *cc, *chip);
  }
  return std::nullopt;
}

MachineConfig MachineConfig::anl() {
  // 1 rack, 1,024 compute nodes, 32 I/O nodes => 16 I/O nodes/midplane.
  return MachineConfig{"ANL", 1, 16};
}

MachineConfig MachineConfig::sdsc() {
  // 3 racks, 3,072 compute nodes, 384 I/O nodes => 64 I/O nodes/midplane
  // (the data-intensive configuration described in §2.2).
  return MachineConfig{"SDSC", 3, 64};
}

std::vector<Location> enumerate_node_cards(const MachineConfig& config) {
  std::vector<Location> cards;
  cards.reserve(static_cast<std::size_t>(config.midplanes()) * 16);
  for (int rack = 0; rack < config.racks; ++rack) {
    for (int midplane = 0; midplane < 2; ++midplane) {
      for (int card = 0; card < 16; ++card) {
        cards.push_back(Location::node_card(rack, midplane, card));
      }
    }
  }
  return cards;
}

}  // namespace dml::bgl
