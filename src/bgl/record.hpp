// The raw RAS record (paper Table 1) and the categorized event the
// prediction pipeline operates on after preprocessing.
#pragma once

#include <string>
#include <vector>

#include "bgl/location.hpp"
#include "bgl/taxonomy.hpp"
#include "common/severity.hpp"
#include "common/types.hpp"

namespace dml::bgl {

/// One raw log entry, attribute-for-attribute per Table 1.
struct RasRecord {
  RecordId record_id = 0;        // RECID: sequence number
  EventType event_type = EventType::kRas;
  TimeSec event_time = 0;        // second-resolution timestamp
  JobId job_id = kNoJob;
  Location location;
  std::string entry_data;        // short free-text description
  Facility facility = Facility::kKernel;
  Severity severity = Severity::kInfo;

  bool is_fatal_severity() const { return dml::is_fatal_severity(severity); }

  friend bool operator==(const RasRecord&, const RasRecord&) = default;
};

/// A unique event after categorization + filtering: the record collapsed
/// onto its taxonomy category.  This is what the learners and the
/// predictor consume.
struct Event {
  TimeSec time = 0;
  CategoryId category = kInvalidCategory;
  JobId job_id = kNoJob;
  Location location;
  /// True failure per the cleaned taxonomy (not merely FATAL severity).
  bool fatal = false;

  friend bool operator==(const Event&, const Event&) = default;
};

/// Orders events by time, breaking ties by category then location, so
/// that pipelines are deterministic.
struct EventTimeOrder {
  bool operator()(const Event& a, const Event& b) const {
    if (a.time != b.time) return a.time < b.time;
    if (a.category != b.category) return a.category < b.category;
    return a.location.packed() < b.location.packed();
  }
};

/// Convenience: timestamps of all fatal events, in order.
std::vector<TimeSec> fatal_times(const std::vector<Event>& events);

/// Counts fatal events in [begin, end).
std::size_t count_fatal_between(const std::vector<Event>& events,
                                TimeSec begin, TimeSec end);

}  // namespace dml::bgl
