// The dynamic meta-learning driver (paper §4, Figure 3): every Wr weeks
// (the retraining window) the meta-learner and reviser are re-invoked on
// the current training set; the resulting knowledge repository serves
// the event-driven predictor until the next retraining.  The training
// set is either the whole history (dynamic-whole), a sliding recent
// window (dynamic-6mo / dynamic-3mo), or frozen at the initial span
// (static) — the four regimes of Figure 9.
//
// The replay itself is OnlineEngine: the driver configures one engine
// (interval-parity tick anchoring, synchronous retraining, boundaries
// pinned at its interval edges via advance_to), streams the log through
// it, and scores each interval's warnings — so the train/predict/retrain
// loop lives in the engine and nowhere else.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <vector>

#include "logio/event_store.hpp"
#include "meta/meta_learner.hpp"
#include "online/engine.hpp"
#include "predict/outcome_matcher.hpp"
#include "predict/predictor.hpp"
#include "predict/reviser.hpp"

namespace dml::online {

struct DriverConfig {
  /// Wp: prediction window == rule-generation window (default 300 s).
  DurationSec prediction_window = 300;
  /// Wr: retraining cadence in weeks (default 4).
  int retrain_weeks = 4;
  TrainingMode mode = TrainingMode::kSlidingWindow;
  /// Sliding-window length; also the initial training span for every
  /// mode (paper default: six months = 26 weeks).
  int training_weeks = 26;
  bool use_reviser = true;
  predict::ReviserConfig reviser;
  meta::MetaLearnerConfig learner;
  predict::PredictorOptions predictor;
  /// Cadence of the predictor's periodic self-check (PD expert) during
  /// replay; 0 disables ticks.  Defaults to Wp.
  DurationSec clock_tick = 300;
  /// §7 future work: "adaptively changing this window size such that the
  /// system can automatically tune its size".  When enabled, each
  /// retraining holds out the tail of the training set, scores every
  /// candidate window by F1 on it, and adopts the winner for the next
  /// interval (prediction_window is then only the starting value).
  bool adaptive_window = false;
  std::vector<DurationSec> window_candidates = {60, 300, 900, 1800};
  /// Fraction of the training span held out for window selection.
  double validation_fraction = 0.25;
  /// Time the serving path inside the engine (per-event observation);
  /// surfaced as DriverResult::engine_stats.serving_seconds.
  bool profile = false;
  /// Restartable replay: skip serving (and scoring) before this week of
  /// the log.  The engine is cold-started at the first interval boundary
  /// at or after it — training state is rebuilt from the repository
  /// without per-event serving — and DriverResult then holds only the
  /// intervals from that boundary on, with index/week numbering matching
  /// a full run.  0 = replay everything (the default).
  int resume_week = 0;
  /// Observer invoked for every warning the engine emits during the
  /// replay, in emission order, independent of interval scoring.
  /// `dmlfp run --warnings` uses it to dump the stream so the in-memory
  /// and on-disk paths can be diffed byte for byte.
  std::function<void(const predict::Warning&)> warning_observer;
};

/// Outcome of one retrain-then-predict interval.
struct IntervalResult {
  int index = 0;
  /// Week of the log (0-based, from the log's first event) at which this
  /// test interval starts — the x-axis of Figures 7 and 9-11.
  int week = 0;
  TimeSec test_begin = 0;
  TimeSec test_end = 0;

  stats::ConfusionCounts counts;
  std::array<stats::ConfusionCounts, learners::kNumRuleSources> per_source;

  /// Rule churn versus the previous interval's (revised) repository,
  /// measured on the final rule set in force.
  meta::KnowledgeRepository::Churn churn;
  /// Figure 12's breakdown: churn of the meta-learner's raw output
  /// versus the previous rules — `added`/`removed` here are "added by
  /// the meta-learner" / "removed by the meta-learner"; the reviser's
  /// removals are counted separately below.
  meta::KnowledgeRepository::Churn churn_meta;
  std::size_t rules_from_meta = 0;
  std::size_t rules_removed_by_reviser = 0;
  std::size_t rules_active = 0;

  meta::TrainTimes train_times;
  double revise_seconds = 0.0;
  double predict_seconds = 0.0;

  /// The prediction window actually used this interval (differs from the
  /// configured one only in adaptive-window mode).
  DurationSec window_used = 0;

  std::size_t fatal_count = 0;
  std::size_t warning_count = 0;

  double precision() const { return stats::precision(counts); }
  double recall() const { return stats::recall(counts); }
};

struct DriverResult {
  std::vector<IntervalResult> intervals;

  /// Whole-replay engine accounting (records, warnings, retrain-build
  /// and — under DriverConfig::profile — serving wall time).
  OnlineEngine::SessionStats engine_stats;

  stats::ConfusionCounts total_counts() const;
  std::array<stats::ConfusionCounts, learners::kNumRuleSources>
  total_per_source() const;
  double overall_precision() const;
  double overall_recall() const;
};

/// The one DriverConfig -> ShardedEngineConfig mapping, shared by every
/// concurrent front-end (`dmlfp run --threads N` and the dmlfpd network
/// daemon), so "same flags => same warning multiset" holds across them
/// by construction.  Serving semantics: async retraining on the shared
/// pool, shard failures quarantine instead of rethrowing, and the first
/// training fires after the full training span regardless of event
/// count (min_training_events = 1, matching the batch driver).
struct ShardedEngineConfig;  // online/sharded_engine.hpp
ShardedEngineConfig sharded_config_from_driver(const DriverConfig& config,
                                               std::size_t shards,
                                               bool profile = false);

class DynamicDriver {
 public:
  explicit DynamicDriver(DriverConfig config);

  /// Runs the full train/predict/retrain loop over one log, consumed
  /// through the EventRepository interface — an in-memory EventStore
  /// and an on-disk storage::OnDiskRepository replay identically (same
  /// canonical order, byte-identical warning stream).
  DriverResult run(const storage::EventRepository& repo) const;

  const DriverConfig& config() const { return config_; }

 private:
  DriverConfig config_;
};

}  // namespace dml::online
