#include "online/driver.hpp"

#include <chrono>

namespace dml::online {
namespace {

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

/// Scores one candidate window by F1 on a validation slice: rules are
/// learned on `fit`, revised, and replayed over `validation`.
double score_window(const meta::MetaLearner& learner,
                    const DriverConfig& config,
                    std::span<const bgl::Event> fit,
                    std::span<const bgl::Event> validation,
                    DurationSec window) {
  auto repository = learner.learn(fit, window);
  if (config.use_reviser) {
    predict::revise(repository, fit, window, config.reviser);
  }
  predict::Predictor predictor(repository, window, config.predictor);
  const auto warnings = predictor.run(validation, window);
  const auto evaluation =
      predict::evaluate_predictions(validation, warnings, window);
  return stats::f1_score(evaluation.overall);
}

/// Picks the best window on the training span's held-out tail; falls
/// back to `current` when the validation slice is too thin to rank.
DurationSec choose_window(const meta::MetaLearner& learner,
                          const DriverConfig& config,
                          std::span<const bgl::Event> training,
                          DurationSec current) {
  if (training.size() < 100 || config.window_candidates.empty()) {
    return current;
  }
  const auto split = static_cast<std::size_t>(
      static_cast<double>(training.size()) *
      (1.0 - config.validation_fraction));
  const auto fit = training.subspan(0, split);
  const auto validation = training.subspan(split);
  std::size_t validation_fatals = 0;
  for (const auto& e : validation) validation_fatals += e.fatal ? 1 : 0;
  if (validation_fatals < 10) return current;

  DurationSec best = current;
  double best_score = -1.0;
  for (DurationSec candidate : config.window_candidates) {
    const double score =
        score_window(learner, config, fit, validation, candidate);
    if (score > best_score) {
      best_score = score;
      best = candidate;
    }
  }
  return best;
}

}  // namespace

std::string_view to_string(TrainingMode mode) {
  switch (mode) {
    case TrainingMode::kStatic: return "static";
    case TrainingMode::kSlidingWindow: return "sliding";
    case TrainingMode::kWholeHistory: return "whole";
  }
  return "unknown";
}

stats::ConfusionCounts DriverResult::total_counts() const {
  stats::ConfusionCounts total;
  for (const auto& interval : intervals) total += interval.counts;
  return total;
}

std::array<stats::ConfusionCounts, learners::kNumRuleSources> DriverResult::total_per_source() const {
  std::array<stats::ConfusionCounts, learners::kNumRuleSources> total{};
  for (const auto& interval : intervals) {
    for (std::size_t s = 0; s < learners::kNumRuleSources; ++s) total[s] += interval.per_source[s];
  }
  return total;
}

double DriverResult::overall_precision() const {
  return stats::precision(total_counts());
}

double DriverResult::overall_recall() const {
  return stats::recall(total_counts());
}

DynamicDriver::DynamicDriver(DriverConfig config) : config_(config) {}

DriverResult DynamicDriver::run(const logio::EventStore& store) const {
  using Clock = std::chrono::steady_clock;
  DriverResult result;
  if (store.empty()) return result;

  const TimeSec origin = store.first_time();
  const TimeSec log_end = store.last_time();
  const DurationSec retrain_span =
      static_cast<DurationSec>(config_.retrain_weeks) * kSecondsPerWeek;
  const DurationSec initial_span =
      static_cast<DurationSec>(config_.training_weeks) * kSecondsPerWeek;

  const meta::MetaLearner learner(config_.learner);
  meta::KnowledgeRepository repository;
  meta::KnowledgeRepository previous;
  bool trained_once = false;
  DurationSec window = config_.prediction_window;

  int index = 0;
  for (TimeSec test_begin = origin + initial_span; test_begin < log_end;
       test_begin += retrain_span, ++index) {
    const TimeSec test_end = std::min<TimeSec>(test_begin + retrain_span,
                                               log_end + 1);
    IntervalResult interval;
    interval.index = index;
    interval.week = static_cast<int>(week_index(test_begin, origin));
    interval.test_begin = test_begin;
    interval.test_end = test_end;

    const bool retrain = !trained_once || config_.mode != TrainingMode::kStatic;
    if (retrain) {
      TimeSec train_begin = origin;
      TimeSec train_end = test_begin;
      switch (config_.mode) {
        case TrainingMode::kStatic:
          train_end = origin + initial_span;
          break;
        case TrainingMode::kSlidingWindow:
          train_begin = std::max<TimeSec>(origin, test_begin - initial_span);
          break;
        case TrainingMode::kWholeHistory:
          break;
      }
      const auto training = store.between(train_begin, train_end);

      if (config_.adaptive_window) {
        window = choose_window(learner, config_, training, window);
      }

      previous = std::move(repository);
      repository = learner.learn(training, window, &interval.train_times);
      interval.rules_from_meta = repository.size();
      interval.churn_meta =
          meta::KnowledgeRepository::diff(previous, repository);
      if (config_.use_reviser) {
        const auto revise_start = Clock::now();
        const auto report =
            predict::revise(repository, training, window, config_.reviser);
        interval.revise_seconds = seconds_since(revise_start);
        interval.rules_removed_by_reviser = report.removed;
      }
      interval.churn = meta::KnowledgeRepository::diff(previous, repository);
      trained_once = true;
    } else {
      interval.rules_from_meta = repository.size();
      // Static mode after the first interval: repository unchanged.
      interval.churn.unchanged = repository.size();
    }
    interval.rules_active = repository.size();
    interval.window_used = window;

    // Predict over the test interval.  The predictor warms up on the
    // trailing Wp of history so window state is correct at test_begin;
    // warnings from the warm-up are discarded.
    const auto predict_start = Clock::now();
    predict::Predictor predictor(repository, window, config_.predictor);
    for (const auto& event : store.between(test_begin - window, test_begin)) {
      predictor.observe(event);
    }
    const auto test_events = store.between(test_begin, test_end);
    const DurationSec tick =
        config_.adaptive_window ? window : config_.clock_tick;
    const auto warnings = predictor.run(test_events, tick);
    interval.predict_seconds = seconds_since(predict_start);

    const auto evaluation =
        predict::evaluate_predictions(test_events, warnings, window);
    interval.counts = evaluation.overall;
    interval.per_source = evaluation.per_source;
    interval.fatal_count = evaluation.total_fatals;
    interval.warning_count = evaluation.total_warnings;

    result.intervals.push_back(std::move(interval));
  }
  return result;
}

}  // namespace dml::online
