#include "online/driver.hpp"

#include <chrono>

#include "online/sharded_engine.hpp"

namespace dml::online {
namespace {

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

/// Maps the driver's per-log configuration onto the streaming engine.
OnlineEngineConfig engine_config(const DriverConfig& config,
                                 DurationSec initial_span,
                                 DurationSec retrain_span) {
  OnlineEngineConfig ec;
  ec.prediction_window = config.prediction_window;
  ec.retrain_interval = retrain_span;
  ec.initial_training_delay = initial_span;
  ec.training_span = initial_span;
  // The driver replays curated logs; the engine's "don't learn from a
  // nearly empty history" gate would silently skip intervals the paper's
  // figures expect to exist.
  ec.min_training_events = 1;
  ec.mode = config.mode;
  ec.use_reviser = config.use_reviser;
  ec.reviser = config.reviser;
  ec.learner = config.learner;
  ec.predictor = config.predictor;
  ec.clock_tick = config.clock_tick;
  ec.adaptive_window = config.adaptive_window;
  ec.window_candidates = config.window_candidates;
  ec.validation_fraction = config.validation_fraction;
  ec.async_retrain = false;
  ec.profile = config.profile;
  return ec;
}

}  // namespace

ShardedEngineConfig sharded_config_from_driver(const DriverConfig& config,
                                               std::size_t shards,
                                               bool profile) {
  const DurationSec initial_span =
      static_cast<DurationSec>(config.training_weeks) * kSecondsPerWeek;
  const DurationSec retrain_span =
      static_cast<DurationSec>(config.retrain_weeks) * kSecondsPerWeek;
  ShardedEngineConfig sharded;
  sharded.shards = shards;
  // Serving semantics: a quarantined shard degrades the run instead of
  // aborting it.
  sharded.rethrow_worker_errors = false;
  sharded.engine = engine_config(config, initial_span, retrain_span);
  // The sharded engine forces its own tick anchoring and per-scope
  // predictor options; async retraining on the shared pool is the point
  // of the concurrent front-end.
  sharded.engine.adaptive_window = false;
  sharded.engine.async_retrain = true;
  sharded.engine.profile = profile;
  return sharded;
}

stats::ConfusionCounts DriverResult::total_counts() const {
  stats::ConfusionCounts total;
  for (const auto& interval : intervals) total += interval.counts;
  return total;
}

std::array<stats::ConfusionCounts, learners::kNumRuleSources>
DriverResult::total_per_source() const {
  std::array<stats::ConfusionCounts, learners::kNumRuleSources> total{};
  for (const auto& interval : intervals) {
    for (std::size_t s = 0; s < learners::kNumRuleSources; ++s) {
      total[s] += interval.per_source[s];
    }
  }
  return total;
}

double DriverResult::overall_precision() const {
  return stats::precision(total_counts());
}

double DriverResult::overall_recall() const {
  return stats::recall(total_counts());
}

DynamicDriver::DynamicDriver(DriverConfig config) : config_(config) {}

DriverResult DynamicDriver::run(const storage::EventRepository& repo) const {
  using Clock = std::chrono::steady_clock;
  DriverResult result;
  if (repo.empty()) return result;

  const TimeSec origin = repo.first_time();
  const TimeSec log_end = repo.last_time();
  const storage::IoStats io_before = repo.io_stats();
  const DurationSec retrain_span =
      static_cast<DurationSec>(config_.retrain_weeks) * kSecondsPerWeek;
  const DurationSec initial_span =
      static_cast<DurationSec>(config_.training_weeks) * kSecondsPerWeek;

  std::vector<predict::Warning> warnings;
  OnlineEngine engine(engine_config(config_, initial_span, retrain_span),
                      [&](const predict::Warning& w) {
                        warnings.push_back(w);
                        if (config_.warning_observer) {
                          config_.warning_observer(w);
                        }
                      });

  // Streamed feed of [from, to) — the archive is never materialised
  // outside the bounded test spans below.
  std::vector<bgl::Event> batch;
  const auto feed = [&](TimeSec from, TimeSec to) {
    auto cursor = repo.scan(from, to);
    while (true) {
      batch.clear();
      if (cursor->next(batch, storage::kDefaultScanBatch) == 0) break;
      engine.consume_batch(batch);
    }
  };

  // Resume: cold-start the engine at the first interval boundary at or
  // after the requested week, keeping full-run interval numbering.
  int index = 0;
  if (config_.resume_week > 0) {
    const TimeSec resume_time =
        origin +
        static_cast<DurationSec>(config_.resume_week) * kSecondsPerWeek;
    while (origin + initial_span +
               static_cast<DurationSec>(index) * retrain_span <
           resume_time) {
      ++index;
    }
  }
  const TimeSec first_test =
      origin + initial_span + static_cast<DurationSec>(index) * retrain_span;
  if (index > 0 && first_test < log_end) {
    engine.cold_start(repo, first_test);
  }

  // The engine anchors its boundary schedule at the first event it sees;
  // feed it the initial training span up front so boundary k lands
  // exactly at origin + initial_span + k * retrain_span.
  std::size_t adopted = engine.retrain_log().size();
  TimeSec fed_until = index > 0 ? first_test : origin;
  for (TimeSec test_begin = first_test; test_begin < log_end;
       test_begin += retrain_span, ++index) {
    const TimeSec test_end = std::min<TimeSec>(test_begin + retrain_span,
                                               log_end + 1);
    IntervalResult interval;
    interval.index = index;
    interval.week = static_cast<int>(week_index(test_begin, origin));
    interval.test_begin = test_begin;
    interval.test_end = test_end;

    feed(fed_until, test_begin);
    fed_until = test_begin;

    // Pin the retraining (or static refresh) exactly at the interval
    // edge; with synchronous retraining the build completes and is
    // adopted inside this call.
    engine.advance_to(test_begin);
    warnings.clear();  // nothing before the boundary is scored

    const auto& log = engine.retrain_log();
    if (log.size() > adopted) {
      const SnapshotBuild& build = log.back();
      adopted = log.size();
      interval.rules_from_meta = build.rules_from_meta;
      interval.churn_meta = build.churn_meta;
      interval.churn = build.churn;
      interval.rules_removed_by_reviser = build.rules_removed_by_reviser;
      interval.train_times = build.train_times;
      interval.revise_seconds = build.revise_seconds;
    } else {
      // Static mode after the first interval: repository unchanged.
      interval.rules_from_meta = engine.rules().size();
      interval.churn.unchanged = engine.rules().size();
    }
    interval.rules_active = engine.rules().size();
    const DurationSec window = engine.current_window();
    interval.window_used = window;

    const std::vector<bgl::Event> test_events =
        storage::materialize(repo, test_begin, test_end);
    const auto predict_start = Clock::now();
    engine.consume_batch(test_events);
    fed_until = test_begin + retrain_span;
    interval.predict_seconds = seconds_since(predict_start);

    const auto evaluation =
        predict::evaluate_predictions(test_events, warnings, window);
    interval.counts = evaluation.overall;
    interval.per_source = evaluation.per_source;
    interval.fatal_count = evaluation.total_fatals;
    interval.warning_count = evaluation.total_warnings;

    result.intervals.push_back(std::move(interval));
  }
  result.engine_stats = engine.stats();
  const storage::IoStats io = repo.io_stats() - io_before;
  result.engine_stats.log_bytes_read = io.bytes_read;
  result.engine_stats.log_segments_opened = io.segments_opened;
  result.engine_stats.log_map_seconds = io.map_seconds;
  result.engine_stats.log_read_seconds = io.read_seconds;
  return result;
}

}  // namespace dml::online
