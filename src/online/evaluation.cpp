#include "online/evaluation.hpp"

#include <algorithm>

namespace dml::online {

std::vector<SeriesPoint> accuracy_series(const DriverResult& result) {
  std::vector<SeriesPoint> series;
  series.reserve(result.intervals.size());
  for (const auto& interval : result.intervals) {
    series.push_back(
        {interval.week, interval.precision(), interval.recall()});
  }
  return series;
}

namespace {

double mean_of(const DriverResult& result, std::size_t warmup,
               double (IntervalResult::*metric)() const) {
  double sum = 0.0;
  std::size_t n = 0;
  for (std::size_t i = warmup; i < result.intervals.size(); ++i) {
    sum += (result.intervals[i].*metric)();
    ++n;
  }
  return n == 0 ? 0.0 : sum / static_cast<double>(n);
}

}  // namespace

double mean_precision(const DriverResult& result, std::size_t warmup_points) {
  return mean_of(result, warmup_points, &IntervalResult::precision);
}

double mean_recall(const DriverResult& result, std::size_t warmup_points) {
  return mean_of(result, warmup_points, &IntervalResult::recall);
}

VennCounts venn_over_range(const logio::EventStore& store, TimeSec begin,
                           TimeSec end,
                           const meta::KnowledgeRepository& association,
                           const meta::KnowledgeRepository& statistical,
                           const meta::KnowledgeRepository& distribution,
                           DurationSec window) {
  const auto test_events = store.between(begin, end);

  auto coverage = [&](const meta::KnowledgeRepository& repository) {
    predict::Predictor predictor(repository, window);
    for (const auto& event : store.between(begin - window, begin)) {
      predictor.observe(event);
    }
    const auto warnings = predictor.run(test_events, /*tick_interval=*/window);
    const auto evaluation =
        predict::evaluate_predictions(test_events, warnings, window);
    std::vector<bool> covered(evaluation.fatal_coverage_mask.size());
    for (std::size_t i = 0; i < covered.size(); ++i) {
      covered[i] = evaluation.fatal_coverage_mask[i] != 0;
    }
    return covered;
  };

  const auto by_ar = coverage(association);
  const auto by_sr = coverage(statistical);
  const auto by_pd = coverage(distribution);

  VennCounts venn;
  venn.total = by_ar.size();
  for (std::size_t i = 0; i < by_ar.size(); ++i) {
    const bool a = by_ar[i];
    const bool s = by_sr[i];
    const bool p = by_pd[i];
    if (a && s && p) {
      ++venn.all;
    } else if (a && s) {
      ++venn.ar_sr;
    } else if (a && p) {
      ++venn.ar_pd;
    } else if (s && p) {
      ++venn.sr_pd;
    } else if (a) {
      ++venn.only_ar;
    } else if (s) {
      ++venn.only_sr;
    } else if (p) {
      ++venn.only_pd;
    } else {
      ++venn.none;
    }
  }
  return venn;
}

}  // namespace dml::online
