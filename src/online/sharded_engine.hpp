// ShardedEngine — the concurrent serving front-end: one producer thread
// (the caller of consume()) preprocesses the record stream and drives
// the retraining schedule; the surviving events are hash-partitioned by
// midplane across N shard workers, each running its own ServingCore
// against the shared rule snapshot; per-shard warning streams are merged
// back into one time-ordered callback.
//
//  - Partitioning is by bgl::Location midplane, and the per-shard
//    predictors run with PredictorOptions::per_scope_state, so the
//    merged warning *multiset* is identical for any shard count
//    (tests/integration/test_sharded_determinism.cpp).
//  - Shard queues are bounded: a stalled shard back-pressures the
//    producer instead of growing without bound.
//  - Retraining runs on ThreadPool::shared() (async mode); the new rule
//    set is published with one atomic snapshot swap and adopted by every
//    shard at the same event-time instant, so consume() never executes
//    training work inline.
//  - The warning callback is invoked serially (under the merger lock)
//    with warnings in nondecreasing issued_at order; ties are broken by
//    a fixed field order so replays are byte-stable.
#pragma once

#include <atomic>
#include <cstddef>
#include <span>
#include <string>
#include <vector>

#include "common/annotations.hpp"
#include "meta/snapshot.hpp"
#include "online/engine.hpp"

namespace dml::online {

struct ShardedEngineConfig {
  /// Number of serving shards; 0 = hardware_concurrency.
  std::size_t shards = 0;
  /// Bounded per-shard queue length (messages); the producer blocks when
  /// a shard falls this far behind (backpressure).
  std::size_t queue_capacity = 4096;
  /// Event-time cadence of watermark heartbeats broadcast to every
  /// shard: they bound how long a quiet shard can hold back the merged
  /// stream and keep PD ticks flowing on idle midplanes.  0 disables
  /// (warnings then drain fully only at finish()).
  DurationSec heartbeat_interval = 300;
  /// Worker-exception policy.  true (default): finish() rethrows the
  /// first shard failure after draining — replay/test semantics.  false:
  /// a failed shard is quarantined (it drains, its watermark keeps
  /// advancing so the merged stream and the producer never stall, its
  /// events are counted as rejected) and finish() returns normally with
  /// the failure in stats()/degradation_log() — serving semantics.
  bool rethrow_worker_errors = true;
  /// Retraining/serving knobs.  per-scope prediction and asynchronous
  /// snapshot builds are forced (per_scope_state, location_scoped,
  /// absolute ticks); the classifier experts (decision tree/neural net)
  /// are disabled because their whole-machine feature window does not
  /// decompose by midplane.  async_retrain defaults on here; adoption
  /// happens at boundary + adoption_lag (default: prediction_window) so
  /// replays stay deterministic.
  OnlineEngineConfig engine;
};

class ShardedEngine {
 public:
  using WarningCallback = OnlineEngine::WarningCallback;
  using SessionStats = OnlineEngine::SessionStats;

  ShardedEngine(ShardedEngineConfig config, WarningCallback on_warning);

  /// finish()es if the caller did not.
  ~ShardedEngine();

  ShardedEngine(const ShardedEngine&) = delete;
  ShardedEngine& operator=(const ShardedEngine&) = delete;

  /// Producer side; records must arrive in time order.  Blocks only on
  /// shard backpressure (and, in deterministic-adoption mode, when the
  /// stream reaches an adoption point before the build finished).
  void consume(const bgl::RasRecord& record);
  void consume(const bgl::Event& event);

  /// Feeds a time-ordered run of categorized events with per-shard
  /// queue handoffs amortized: each shard receives its events as one
  /// batch message per run instead of one message per event.  The
  /// merged warning multiset, schedule decisions, failpoint evaluation
  /// sequence and backpressure contract are identical to consuming the
  /// events one by one (DESIGN.md §13).
  void consume_batch(std::span<const bgl::Event> events);

  /// Restart path: replays [repo.first_time(), serve_from) through the
  /// normal concurrent pipeline — same schedule, same shard state — with
  /// every warning issued before serve_from suppressed at the merger.
  /// After it returns, keep consuming from serve_from; the post-resume
  /// warning multiset matches an uninterrupted run (the shard-count
  /// invariance argument, applied to a time-split of one stream).
  /// Must run before the first consume() call.
  void cold_start(const storage::EventRepository& repo, TimeSec serve_from);

  /// Flushes every shard to the global last event time, joins the
  /// workers, drains the merger, and rethrows the first worker failure
  /// if any.  Idempotent; returns the final aggregate stats.
  SessionStats finish();

  /// Aggregate stats (call from the producer thread; shard counters are
  /// read atomically, the scheduler's are producer-owned).
  SessionStats stats() const;

  std::size_t shard_count() const { return shards_.size(); }

  /// Rule snapshot currently in force (atomic load; any thread).
  meta::RepositorySnapshot rules_snapshot() const {
    return publisher_.load();
  }

  struct ShardReport {
    std::size_t index = 0;
    std::uint64_t events = 0;
    std::uint64_t warnings = 0;
    /// Wall time the worker spent processing (not queue-waiting).
    double busy_seconds = 0.0;
  };
  /// Per-shard accounting (complete after finish()).
  std::vector<ShardReport> shard_reports() const;

  /// Every degradation incident of the session, time-ordered: abandoned
  /// retrain boundaries, quarantined shards, and a counted-skip summary
  /// when records were dropped.  Complete after finish(); safe to call
  /// from the producer thread at any time.
  std::vector<DegradationEvent> degradation_log() const;

 private:
  struct Shard;
  class WarningMerger;

  SessionStats collect_stats() const;
  void feed(const bgl::Event& event);
  void feed_batch(std::span<const bgl::Event> events);
  /// Hands every buffered per-shard run to its queue (feed_batch).
  void flush_feed_runs();
  void broadcast_heartbeats(TimeSec t);
  void worker(std::size_t index);
  void note_quarantine(std::size_t index, TimeSec at, std::string what)
      DML_EXCLUDES(quarantine_mutex_);
  std::size_t shard_of(const bgl::Event& event) const;

  ShardedEngineConfig config_;
  WarningCallback on_warning_;

  preprocess::StreamingPipeline pipeline_;
  RetrainScheduler scheduler_;
  meta::SnapshotPublisher publisher_;

  std::vector<std::unique_ptr<Shard>> shards_;
  std::unique_ptr<WarningMerger> merger_;
  /// feed_batch()'s per-shard run buffers (producer-owned scratch);
  /// always empty between consume calls.
  std::vector<std::vector<bgl::Event>> feed_runs_;

  // Producer-side state.
  std::uint64_t records_consumed_ = 0;
  std::uint64_t cold_start_events_ = 0;
  std::uint64_t feed_rejected_ = 0;
  /// Warnings with issued_at before this instant are swallowed at the
  /// merger (cold_start's pre-resume replay).  Written once, before any
  /// event flows; read from the merger's emit path.
  std::atomic<TimeSec> suppress_until_{0};
  std::atomic<std::uint64_t> suppressed_warnings_{0};
  std::optional<TimeSec> next_heartbeat_;
  TimeSec last_event_time_ = 0;
  /// Build wall time (training + revision) of every adopted snapshot,
  /// accumulated at publication (SessionStats::retrain_build_seconds),
  /// with the per-learner decomposition alongside.
  double retrain_build_seconds_ = 0.0;
  meta::TrainTimes retrain_train_times_;
  double retrain_revise_seconds_ = 0.0;
  bool finished_ = false;
  SessionStats final_stats_;

  // Quarantine incidents, appended by shard workers.
  mutable common::Mutex quarantine_mutex_;
  std::vector<DegradationEvent> quarantines_ DML_GUARDED_BY(quarantine_mutex_);
};

}  // namespace dml::online
