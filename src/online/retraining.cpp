#include "online/retraining.hpp"

#include <algorithm>
#include <chrono>
#include <thread>
#include <utility>

#include "common/check.hpp"
#include "common/failpoint.hpp"
#include "common/thread_pool.hpp"
#include "predict/outcome_matcher.hpp"

namespace dml::online {
namespace {

/// Internal carrier for an exhausted retry budget.  Converted into
/// failure *data* (a failed SnapshotBuild or a RetrainFailure) on the
/// thread that ran the build — an exception rethrown through the future
/// would leave the owner reading what() while the pool thread disposes
/// of the task state that owns it.
class BuildFailed : public std::runtime_error {
 public:
  BuildFailed(std::size_t attempts, const std::string& message,
              std::string stage)
      : std::runtime_error(message),
        attempts_(attempts),
        stage_(std::move(stage)) {}

  std::size_t attempts() const { return attempts_; }
  const std::string& stage() const { return stage_; }

 private:
  std::size_t attempts_;
  std::string stage_;
};

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

/// Scores one candidate window by F1 on a validation slice: rules are
/// learned on `fit`, revised, and replayed over `validation`.
double score_window(const meta::MetaLearner& learner,
                    const RetrainPolicy& policy,
                    std::span<const bgl::Event> fit,
                    std::span<const bgl::Event> validation,
                    DurationSec window) {
  auto repository = learner.learn(fit, window);
  if (policy.use_reviser) {
    predict::revise(repository, fit, window, policy.reviser);
  }
  predict::Predictor predictor(repository, window, policy.predictor);
  const auto warnings = predictor.run(validation, window);
  const auto evaluation =
      predict::evaluate_predictions(validation, warnings, window);
  return stats::f1_score(evaluation.overall);
}

/// Picks the best window on the training span's held-out tail; falls
/// back to `current` when the validation slice is too thin to rank.
DurationSec choose_window(const meta::MetaLearner& learner,
                          const RetrainPolicy& policy,
                          std::span<const bgl::Event> training,
                          DurationSec current) {
  if (training.size() < 100 || policy.window_candidates.empty()) {
    return current;
  }
  const auto split = static_cast<std::size_t>(
      static_cast<double>(training.size()) *
      (1.0 - policy.validation_fraction));
  const auto fit = training.subspan(0, split);
  const auto validation = training.subspan(split);
  std::size_t validation_fatals = 0;
  for (const auto& e : validation) validation_fatals += e.fatal ? 1 : 0;
  if (validation_fatals < 10) return current;

  DurationSec best = current;
  double best_score = -1.0;
  for (DurationSec candidate : policy.window_candidates) {
    const double score =
        score_window(learner, policy, fit, validation, candidate);
    if (score > best_score) {
      best_score = score;
      best = candidate;
    }
  }
  return best;
}

}  // namespace

std::string_view to_string(TrainingMode mode) {
  switch (mode) {
    case TrainingMode::kStatic: return "static";
    case TrainingMode::kSlidingWindow: return "sliding";
    case TrainingMode::kWholeHistory: return "whole";
  }
  return "unknown";
}

RetrainScheduler::RetrainScheduler(RetrainPolicy policy)
    : policy_(std::move(policy)),
      window_(policy_.prediction_window),
      latest_(meta::empty_snapshot()) {
  // Config contracts, checked once at construction: a non-positive
  // cadence would spin boundary_due's skipped-boundary collapse loop
  // forever, and a non-positive window mines rules over an empty span.
  DML_CHECK_MSG(policy_.retrain_interval > 0,
                "retrain cadence must be positive");
  DML_CHECK_MSG(policy_.prediction_window > 0,
                "prediction window must be positive");
}

RetrainScheduler::~RetrainScheduler() {
  if (pending_.valid()) pending_.wait();
}

std::optional<TimeSec> RetrainScheduler::boundary_due(TimeSec t) {
  if (!anchor_) {
    anchor_ = t;
    const DurationSec delay = policy_.initial_training_delay > 0
                                  ? policy_.initial_training_delay
                                  : policy_.retrain_interval;
    next_boundary_ = t + delay;
    return std::nullopt;
  }
  if (!next_boundary_ || t < *next_boundary_) return std::nullopt;
  // Collapse skipped boundaries (an event gap longer than the cadence)
  // onto the latest one that is due.
  TimeSec boundary = *next_boundary_;
  while (boundary + policy_.retrain_interval <= t) {
    boundary += policy_.retrain_interval;
  }
  *next_boundary_ = boundary + policy_.retrain_interval;
  // The schedule only moves forward: the boundary just returned is in
  // the past of the one armed next (snapshot epoch ordering).
  DML_DCHECK(*next_boundary_ > boundary);
  return boundary;
}

RetrainScheduler::BoundaryAction RetrainScheduler::fire(TimeSec boundary) {
  if (policy_.mode == TrainingMode::kStatic && trained_once_) {
    return BoundaryAction::kRefresh;
  }
  // One build at a time: if the previous one is still running (or not
  // yet adopted), skip this boundary rather than queueing work the
  // stream has already outpaced.
  if (pending_.valid() || ready_) return BoundaryAction::kNone;

  if (policy_.mode == TrainingMode::kSlidingWindow) {
    while (!history_.empty() &&
           history_.front().time < boundary - policy_.training_span) {
      history_.pop_front();
    }
  }
  if (history_.empty() || history_.size() < policy_.min_training_events) {
    return BoundaryAction::kNone;
  }

  ++retrainings_;
  trained_once_ = true;
  std::vector<bgl::Event> training(history_.begin(), history_.end());
  meta::RepositorySnapshot previous = latest_;
  if (policy_.async) {
    pending_scheduled_ = boundary;
    pending_ = ThreadPool::shared().submit(
        [this, training = std::move(training), boundary,
         previous = std::move(previous)]() mutable -> SnapshotBuild {
          try {
            return run_build_with_retry(training, boundary,
                                        std::move(previous));
          } catch (const BuildFailed& e) {
            SnapshotBuild failed;
            failed.scheduled_at = boundary;
            failed.failed_attempts = e.attempts();
            failed.error = e.what();
            failed.failed_stage = e.stage();
            return failed;
          }
        });
  } else {
    try {
      ready_ = run_build_with_retry(training, boundary, std::move(previous));
      ready_->activate_at = boundary;
    } catch (const BuildFailed& e) {
      failures_.push_back({boundary, e.attempts(), e.what(), e.stage()});
      return BoundaryAction::kNone;
    }
  }
  return BoundaryAction::kRetrain;
}

SnapshotBuild RetrainScheduler::run_build_with_retry(
    const std::vector<bgl::Event>& training, TimeSec boundary,
    meta::RepositorySnapshot previous) const {
  const std::size_t budget =
      std::max<std::size_t>(1, policy_.max_build_attempts);
  std::uint32_t backoff_ms = policy_.retry_backoff_ms;
  for (std::size_t attempt = 1;; ++attempt) {
    try {
      return run_build(training, boundary, previous);
    } catch (const meta::LearnerError& e) {
      // A base learner threw: keep its name so the failure record (and
      // the --profile report) can attribute the abandonment per learner.
      if (attempt >= budget) throw BuildFailed(attempt, e.what(), e.stage());
    } catch (const std::exception& e) {
      if (attempt >= budget) throw BuildFailed(attempt, e.what(), "build");
    } catch (...) {
      if (attempt >= budget) {
        throw BuildFailed(attempt, "unknown exception", "build");
      }
    }
    if (backoff_ms > 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(backoff_ms));
      backoff_ms *= 2;
    }
  }
}

void RetrainScheduler::observe(const bgl::Event& event) {
  history_.push_back(event);
  // Keep memory bounded between boundaries too; the exact per-boundary
  // trim happens in fire().
  if (policy_.mode == TrainingMode::kSlidingWindow) {
    while (!history_.empty() &&
           history_.front().time < event.time - policy_.training_span) {
      history_.pop_front();
    }
  }
}

SnapshotBuild RetrainScheduler::run_build(
    const std::vector<bgl::Event>& training, TimeSec boundary,
    meta::RepositorySnapshot previous) const {
  using Clock = std::chrono::steady_clock;
  // Fault injection: `retrain.build` throw exercises the bounded-retry /
  // keep-last-snapshot path, delay simulates a slow build racing the
  // stream to its adoption point.
  common::failpoint(common::failpoints::kRetrainBuild);
  SnapshotBuild build;
  build.scheduled_at = boundary;

  meta::MetaLearnerConfig learner_config = policy_.learner;
  // An asynchronous build already runs on the shared pool; fanning the
  // base learners out to the same pool again would have pool tasks
  // blocking on pool tasks.
  if (policy_.async) learner_config.parallel_training = false;
  const meta::MetaLearner learner(learner_config);

  DurationSec window = window_;
  if (policy_.adaptive_window) {
    window = choose_window(learner, policy_, training, window);
  }
  build.window = window;

  auto repository = learner.learn(training, window, &build.train_times);
  build.rules_from_meta = repository.size();
  build.churn_meta = meta::KnowledgeRepository::diff(*previous, repository);
  if (policy_.use_reviser) {
    const auto revise_start = Clock::now();
    const auto report =
        predict::revise(repository, training, window, policy_.reviser);
    build.revise_seconds = seconds_since(revise_start);
    build.rules_removed_by_reviser = report.removed;
  }
  build.churn = meta::KnowledgeRepository::diff(*previous, repository);
  build.repository = meta::freeze(std::move(repository));
  return build;
}

std::optional<SnapshotBuild> RetrainScheduler::take_pending(
    TimeSec activate_at) {
  const TimeSec boundary = pending_scheduled_;
  // Adoption never precedes the boundary that scheduled the build; the
  // serving side relies on activate_at >= scheduled_at to warm its
  // predictor from events strictly before adoption.
  DML_DCHECK(activate_at >= boundary);
  auto build = pending_.get();
  if (build.failed()) {
    // Every attempt failed: abandon the boundary, keep serving the last
    // good snapshot.  (pending_ was consumed by get(), so the next
    // boundary is free to train again.)
    failures_.push_back({boundary, build.failed_attempts,
                         std::move(build.error),
                         std::move(build.failed_stage)});
    return std::nullopt;
  }
  build.activate_at = activate_at;
  window_ = build.window;
  latest_ = build.repository;
  return build;
}

std::optional<SnapshotBuild> RetrainScheduler::poll(TimeSec t) {
  if (ready_) {
    auto build = std::move(*ready_);
    ready_.reset();
    window_ = build.window;
    latest_ = build.repository;
    return build;
  }
  if (!pending_.valid()) return std::nullopt;
  if (policy_.adoption_lag > 0) {
    if (t < pending_scheduled_ + policy_.adoption_lag) return std::nullopt;
    // The adoption point is fixed in event time; if the build is still
    // running when the stream reaches it, wait for it (replay
    // determinism beats latency here — serving chooses lag 0 instead).
    return take_pending(pending_scheduled_ + policy_.adoption_lag);
  }
  if (pending_.wait_for(std::chrono::seconds(0)) !=
      std::future_status::ready) {
    return std::nullopt;
  }
  return take_pending(t);
}

std::optional<SnapshotBuild> RetrainScheduler::join(TimeSec t) {
  if (ready_) return poll(t);
  if (!pending_.valid()) return std::nullopt;
  return take_pending(t);
}

bool RetrainScheduler::build_in_flight() const {
  return pending_.valid() || ready_.has_value();
}

}  // namespace dml::online
