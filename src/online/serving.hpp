// ServingCore — the "predict" half of the serving core: owns the
// predictor in force, adopts retrained snapshots published by the
// RetrainScheduler, and drives the PD expert's clock ticks.  This is the
// single implementation of the per-event serving loop; OnlineEngine runs
// one, ShardedEngine runs one per shard, and DynamicDriver replays
// through OnlineEngine.
//
// Two tick-anchoring disciplines are supported:
//  - kInterval (replay parity): ticks re-anchor at the first event after
//    each snapshot adoption, exactly the batch driver's per-interval
//    `Predictor::run` semantics — replaying a log through the engine
//    reproduces DynamicDriver's warning stream bit for bit.
//  - kAbsolute (sharded serving): ticks fire on the fixed grid
//    first-adoption + k * clock_tick regardless of adoptions or event
//    arrivals, so every shard of a partitioned stream ticks at the same
//    instants — the invariant that makes an N-shard run produce the
//    same warning multiset as a single shard.
#pragma once

#include <deque>
#include <memory>
#include <optional>
#include <vector>

#include "online/retraining.hpp"
#include "predict/predictor.hpp"

namespace dml::online {

class ServingCore {
 public:
  enum class TickAnchor { kInterval, kAbsolute };

  struct Options {
    /// PD self-check cadence; 0 disables ticks.
    DurationSec clock_tick = 300;
    predict::PredictorOptions predictor;
    TickAnchor tick_anchor = TickAnchor::kInterval;
    /// Ticks fire every `window` of the adopted snapshot instead of
    /// clock_tick (the adaptive-window driver's replay semantics).
    bool tick_follows_window = false;
    /// Trailing event-time span buffered internally for warming fresh
    /// predictors at adoption.  0 = no internal buffer; the owner must
    /// provide warm history via adopt()'s `warm` argument instead.
    DurationSec warm_retention = 0;
  };

  explicit ServingCore(Options options);

  /// Adopts a finished build at build.activate_at: publishes the
  /// snapshot, rebuilds the predictor, warms its window state on `warm`
  /// (events in [activate_at - window, activate_at), oldest first;
  /// warm-up warnings are discarded) and re-anchors or preserves the
  /// tick grid per the anchoring discipline.  In kAbsolute mode, ticks
  /// still pending before the activation instant fire first (into
  /// `out`).
  void adopt(const SnapshotBuild& build,
             std::span<const bgl::Event> warm_override,
             std::vector<predict::Warning>& out);
  /// Same, warming from the internal warm_retention buffer.
  void adopt(const SnapshotBuild& build, std::vector<predict::Warning>& out);

  /// Static-mode boundary: same rules, fresh predictor (window state
  /// rebuilt, deduplication cleared, ticks re-anchored) — the batch
  /// driver's fresh-Predictor-per-interval semantics.
  void refresh(TimeSec at, std::span<const bgl::Event> warm_override,
               std::vector<predict::Warning>& out);
  void refresh(TimeSec at, std::vector<predict::Warning>& out);

  /// Fires every tick due strictly before event time t.
  void advance(TimeSec t, std::vector<predict::Warning>& out);

  /// advance(event.time) + predictor observation + warm-buffer upkeep.
  void observe(const bgl::Event& event, std::vector<predict::Warning>& out);

  /// Batch form of observe(): bit-identical warning stream (the
  /// `serving.observe` failpoint still fires once per event, so chaos
  /// schedules line up), with the predictor/warm-buffer branches hoisted
  /// out of the per-event loop.  A throw mid-batch leaves the events
  /// before the faulting one fully served, exactly as the serial loop
  /// would (DESIGN.md §13).
  void observe_batch(std::span<const bgl::Event> events,
                     std::vector<predict::Warning>& out);

  /// End of stream (kAbsolute): fires the remaining ticks strictly
  /// before `end`, so every shard's grid is flushed to the same global
  /// instant.
  void flush(TimeSec end, std::vector<predict::Warning>& out);

  bool serving() const { return predictor_ != nullptr; }
  /// Snapshot currently in force (empty_snapshot before first adoption).
  const meta::RepositorySnapshot& snapshot() const { return snapshot_; }
  DurationSec window() const { return window_; }

 private:
  void rebuild_predictor(TimeSec at, std::span<const bgl::Event> warm);
  DurationSec tick_interval() const {
    return options_.tick_follows_window ? window_ : options_.clock_tick;
  }

  Options options_;
  meta::RepositorySnapshot snapshot_;
  DurationSec window_;
  std::unique_ptr<predict::Predictor> predictor_;
  std::optional<TimeSec> next_tick_;
  /// Scratch for adoption warm-up (events copied from the caller's span
  /// or the internal buffer) and for its discarded warm-up warnings.
  std::vector<bgl::Event> warm_scratch_;
  std::vector<predict::Warning> discard_;
  /// Internal trailing-event buffer (warm_retention > 0).
  std::deque<bgl::Event> warm_buffer_;
};

}  // namespace dml::online
