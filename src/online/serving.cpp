#include "online/serving.hpp"

#include "common/annotations.hpp"
#include "common/failpoint.hpp"

namespace dml::online {

ServingCore::ServingCore(Options options)
    : options_(options),
      snapshot_(meta::empty_snapshot()),
      window_(300) {}

void ServingCore::rebuild_predictor(TimeSec at,
                                    std::span<const bgl::Event> warm) {
  predictor_ = std::make_unique<predict::Predictor>(*snapshot_, window_,
                                                    options_.predictor);
  // Warm the fresh predictor's window state on the trailing history so
  // in-flight patterns survive the swap; warm-up warnings are discarded.
  discard_.clear();
  for (const auto& event : warm) {
    if (event.time >= at - window_ && event.time < at) {
      predictor_->observe_into(event, discard_);
    }
  }
  discard_.clear();
}

void ServingCore::adopt(const SnapshotBuild& build,
                        std::span<const bgl::Event> warm_override,
                        std::vector<predict::Warning>& out) {
  if (options_.tick_anchor == TickAnchor::kAbsolute) {
    // Ticks due before the activation instant fire on the old rules; a
    // tick exactly at it fires on the new ones.
    advance(build.activate_at, out);
  } else {
    // Replay parity: adoption discards the pending grid; the first event
    // served by the new predictor re-anchors it.
    next_tick_.reset();
  }
  snapshot_ = build.repository;
  window_ = build.window;
  rebuild_predictor(build.activate_at, warm_override);
  if (options_.tick_anchor == TickAnchor::kAbsolute && !next_tick_ &&
      tick_interval() > 0) {
    next_tick_ = build.activate_at + tick_interval();
  }
}

void ServingCore::adopt(const SnapshotBuild& build,
                        std::vector<predict::Warning>& out) {
  warm_scratch_.assign(warm_buffer_.begin(), warm_buffer_.end());
  adopt(build, warm_scratch_, out);
}

void ServingCore::refresh(TimeSec at,
                          std::span<const bgl::Event> warm_override,
                          std::vector<predict::Warning>& out) {
  if (options_.tick_anchor == TickAnchor::kAbsolute) {
    advance(at, out);
  } else {
    next_tick_.reset();
  }
  rebuild_predictor(at, warm_override);
  if (options_.tick_anchor == TickAnchor::kAbsolute && !next_tick_ &&
      tick_interval() > 0) {
    next_tick_ = at + tick_interval();
  }
}

void ServingCore::refresh(TimeSec at, std::vector<predict::Warning>& out) {
  warm_scratch_.assign(warm_buffer_.begin(), warm_buffer_.end());
  refresh(at, warm_scratch_, out);
}

void ServingCore::advance(TimeSec t, std::vector<predict::Warning>& out) {
  while (predictor_ && next_tick_ && *next_tick_ < t) {
    predictor_->tick_into(*next_tick_, out);
    *next_tick_ += tick_interval();
  }
}

void ServingCore::observe(const bgl::Event& event,
                          std::vector<predict::Warning>& out) {
  // Fault injection: `serving.observe` supports throw (the owner's
  // worker quarantines) and delay (a slow serving step); drop/corrupt
  // are ignored here — counted drops live at the owner's feed level.
  common::failpoint(common::failpoints::kServingObserve);
  advance(event.time, out);
  if (options_.tick_anchor == TickAnchor::kInterval && predictor_ &&
      !next_tick_ && tick_interval() > 0) {
    next_tick_ = event.time + tick_interval();
  }
  if (predictor_) {
    predictor_->observe_into(event, out);
  }
  if (options_.warm_retention > 0) {
    warm_buffer_.push_back(event);
    while (!warm_buffer_.empty() &&
           warm_buffer_.front().time < event.time - options_.warm_retention) {
      warm_buffer_.pop_front();
    }
  }
}

void DML_HOT ServingCore::observe_batch(
    std::span<const bgl::Event> events,
                                std::vector<predict::Warning>& out) {
  if (predictor_ == nullptr || options_.warm_retention > 0) {
    // Cold core or warm-buffer upkeep in play: the per-event path
    // already does the minimum work.
    for (const bgl::Event& event : events) observe(event, out);
    return;
  }
  const bool interval_anchor =
      options_.tick_anchor == TickAnchor::kInterval && tick_interval() > 0;
  for (const bgl::Event& event : events) {
    common::failpoint(common::failpoints::kServingObserve);
    advance(event.time, out);
    if (interval_anchor && !next_tick_) {
      next_tick_ = event.time + tick_interval();
    }
    predictor_->observe_into(event, out);
  }
}

void ServingCore::flush(TimeSec end, std::vector<predict::Warning>& out) {
  advance(end, out);
}

}  // namespace dml::online
