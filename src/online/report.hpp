// Plain-text table rendering shared by the benchmark binaries: every
// bench prints the same rows/series shape as the paper's table or figure
// it regenerates.
#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

namespace dml::online {

class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers);

  void add_row(std::vector<std::string> cells);
  void print(std::ostream& out) const;

  static std::string fmt(double value, int decimals = 2);
  static std::string fmt(std::uint64_t value);
  static std::string fmt(std::int64_t value);

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Renders a crude fixed-width ASCII sparkline of a series in [0, 1]
/// (for eyeballing figure shapes in bench output).
std::string sparkline(const std::vector<double>& values);

}  // namespace dml::online
