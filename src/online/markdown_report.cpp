#include "online/markdown_report.hpp"

#include <algorithm>
#include <cstdio>
#include <vector>

#include "common/civil_time.hpp"
#include "meta/meta_learner.hpp"
#include "online/report.hpp"
#include "predict/analysis.hpp"
#include "predict/predictor.hpp"
#include "predict/reviser.hpp"
#include "stats/bootstrap.hpp"

namespace dml::online {
namespace {

std::string pct(double value) {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "%.1f%%", 100.0 * value);
  return buf;
}

std::string f2(double value) {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "%.2f", value);
  return buf;
}

}  // namespace

void write_markdown_report(std::ostream& out, const DriverConfig& config,
                           const DriverResult& result,
                           const logio::EventStore& store,
                           const ReportOptions& options) {
  out << "# " << options.title << "\n\n";
  out << "- log span: " << format_timestamp(store.first_time()) << " to "
      << format_timestamp(store.last_time()) << " (" << store.size()
      << " events, " << store.fatal_times().size() << " failures)\n";
  out << "- mode: " << to_string(config.mode) << ", training "
      << config.training_weeks << " wk, retrain every "
      << config.retrain_weeks << " wk, window " << config.prediction_window
      << " s" << (config.adaptive_window ? " (adaptive)" : "") << "\n";
  out << "- reviser: " << (config.use_reviser ? "on" : "off")
      << " (MinROC " << config.reviser.min_roc << ")\n\n";

  if (result.intervals.empty()) {
    out << "*No prediction intervals (training span exceeds the log).*\n";
    return;
  }

  // Headline with bootstrap CIs over intervals.
  std::vector<stats::ConfusionCounts> blocks;
  for (const auto& interval : result.intervals) {
    blocks.push_back(interval.counts);
  }
  const auto precision_ci = stats::bootstrap_ci(blocks, &stats::precision);
  const auto recall_ci = stats::bootstrap_ci(blocks, &stats::recall);
  out << "## Headline\n\n";
  out << "| metric | value | 95% CI |\n|---|---|---|\n";
  out << "| precision | " << f2(precision_ci.point) << " | ["
      << f2(precision_ci.lo) << ", " << f2(precision_ci.hi) << "] |\n";
  out << "| recall | " << f2(recall_ci.point) << " | [" << f2(recall_ci.lo)
      << ", " << f2(recall_ci.hi) << "] |\n\n";

  // Per-interval table.
  out << "## Intervals\n\n";
  out << "| week | precision | recall | failures | warnings | rules | "
         "added | removed(meta) | removed(reviser) | train s |\n";
  out << "|---|---|---|---|---|---|---|---|---|---|\n";
  for (const auto& interval : result.intervals) {
    char train[24];
    std::snprintf(train, sizeof(train), "%.2f",
                  interval.train_times.total_seconds() +
                      interval.revise_seconds);
    out << "| " << interval.week << " | " << f2(interval.precision())
        << " | " << f2(interval.recall()) << " | " << interval.fatal_count
        << " | " << interval.warning_count << " | " << interval.rules_active
        << " | " << interval.churn_meta.added << " | "
        << interval.churn_meta.removed << " | "
        << interval.rules_removed_by_reviser << " | " << train << " |\n";
  }
  out << "\n";

  // Recall trend sparkline.
  std::vector<double> recalls;
  for (const auto& interval : result.intervals) {
    recalls.push_back(interval.recall());
  }
  out << "recall trend: `" << sparkline(recalls) << "`\n\n";

  if (!options.include_lead_times) return;

  // Operational analysis over the whole test span: retrain per interval,
  // replay, and pool warnings — mirrors what the driver did.
  out << "## Operational analysis (test span replay)\n\n";
  const meta::MetaLearner learner(config.learner);
  std::vector<predict::Warning> warnings;
  const TimeSec origin = store.first_time();
  for (const auto& interval : result.intervals) {
    TimeSec train_begin = origin;
    TimeSec train_end = interval.test_begin;
    if (config.mode == TrainingMode::kSlidingWindow) {
      train_begin = std::max<TimeSec>(
          origin, interval.test_begin -
                      static_cast<DurationSec>(config.training_weeks) *
                          kSecondsPerWeek);
    } else if (config.mode == TrainingMode::kStatic) {
      train_end = origin + static_cast<DurationSec>(config.training_weeks) *
                               kSecondsPerWeek;
    }
    const DurationSec window = interval.window_used > 0
                                   ? interval.window_used
                                   : config.prediction_window;
    auto repository =
        learner.learn(store.between(train_begin, train_end), window);
    if (config.use_reviser) {
      predict::revise(repository, store.between(train_begin, train_end),
                      window, config.reviser);
    }
    predict::Predictor predictor(repository, window, config.predictor);
    for (const auto& event :
         store.between(interval.test_begin - window, interval.test_begin)) {
      predictor.observe(event);
    }
    auto issued = predictor.run(
        store.between(interval.test_begin, interval.test_end), window);
    warnings.insert(warnings.end(), issued.begin(), issued.end());
  }
  const auto test_events = store.between(result.intervals.front().test_begin,
                                         result.intervals.back().test_end);
  const auto leads = predict::lead_time_stats(test_events, warnings,
                                              config.prediction_window);
  out << "- covered failures: " << leads.matched_warnings << "\n";
  char lead_line[160];
  std::snprintf(lead_line, sizeof(lead_line),
                "- warning lead time: median %.0f s (p10 %.0f, p90 %.0f); "
                "%s give >= 1 min of notice\n",
                leads.median_seconds, leads.p10_seconds, leads.p90_seconds,
                pct(leads.actionable_fraction).c_str());
  out << lead_line;

  const auto accuracy = predict::per_category_accuracy(
      test_events, warnings, config.prediction_window);
  out << "\n| failure category | failures | recall |\n|---|---|---|\n";
  const std::size_t top = std::min(options.top_categories, accuracy.size());
  for (std::size_t i = 0; i < top; ++i) {
    out << "| " << bgl::taxonomy().category(accuracy[i].category).name
        << " | " << accuracy[i].failures << " | " << f2(accuracy[i].recall())
        << " |\n";
  }
}

}  // namespace dml::online
