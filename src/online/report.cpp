#include "online/report.hpp"

#include <algorithm>
#include <cstdio>

namespace dml::online {

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void TablePrinter::add_row(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

void TablePrinter::print(std::ostream& out) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
    for (const auto& row : rows_) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      out << (c == 0 ? "" : "  ");
      out << row[c];
      for (std::size_t pad = row[c].size(); pad < widths[c]; ++pad) {
        out << ' ';
      }
    }
    out << '\n';
  };
  print_row(headers_);
  std::string rule;
  for (std::size_t c = 0; c < widths.size(); ++c) {
    if (c != 0) rule += "  ";
    rule += std::string(widths[c], '-');
  }
  out << rule << '\n';
  for (const auto& row : rows_) print_row(row);
}

std::string TablePrinter::fmt(double value, int decimals) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.*f", decimals, value);
  return buf;
}

std::string TablePrinter::fmt(std::uint64_t value) {
  return std::to_string(value);
}

std::string TablePrinter::fmt(std::int64_t value) {
  return std::to_string(value);
}

std::string sparkline(const std::vector<double>& values) {
  static constexpr const char* kLevels = " .:-=+*#%@";
  std::string out;
  out.reserve(values.size());
  for (double v : values) {
    const double clamped = std::clamp(v, 0.0, 1.0);
    const int level =
        std::min(9, static_cast<int>(clamped * 10.0));
    out.push_back(kLevels[level]);
  }
  return out;
}

}  // namespace dml::online
