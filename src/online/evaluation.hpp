// Aggregation helpers on top of the driver: per-week accuracy series
// (the y-values of Figures 7 and 9-11) and the Figure 8 Venn analysis of
// which base learners capture which failures.
#pragma once

#include <vector>

#include "online/driver.hpp"

namespace dml::online {

struct SeriesPoint {
  int week = 0;
  double precision = 0.0;
  double recall = 0.0;
};

/// One point per retrain interval.
std::vector<SeriesPoint> accuracy_series(const DriverResult& result);

/// Mean of a series field over the tail (skipping the first
/// `warmup_points`), for compact bench summaries.
double mean_precision(const DriverResult& result,
                      std::size_t warmup_points = 0);
double mean_recall(const DriverResult& result, std::size_t warmup_points = 0);

/// Figure 8: failures captured by each subset of {AR, SR, PD} over a
/// time range, each base learner running standalone.
struct VennCounts {
  std::size_t only_ar = 0;
  std::size_t only_sr = 0;
  std::size_t only_pd = 0;
  std::size_t ar_sr = 0;   // AR & SR but not PD
  std::size_t ar_pd = 0;   // AR & PD but not SR
  std::size_t sr_pd = 0;   // SR & PD but not AR
  std::size_t all = 0;     // captured by all three
  std::size_t none = 0;    // captured by nobody
  std::size_t total = 0;

  std::size_t captured_by_ar() const { return only_ar + ar_sr + ar_pd + all; }
  std::size_t captured_by_sr() const { return only_sr + ar_sr + sr_pd + all; }
  std::size_t captured_by_pd() const { return only_pd + ar_pd + sr_pd + all; }
  std::size_t captured_by_multiple() const {
    return ar_sr + ar_pd + sr_pd + all;
  }
};

/// Runs each repository's predictor standalone over [begin, end) (with a
/// Wp warm-up) and intersects the sets of captured failures.
VennCounts venn_over_range(const logio::EventStore& store, TimeSec begin,
                           TimeSec end,
                           const meta::KnowledgeRepository& association,
                           const meta::KnowledgeRepository& statistical,
                           const meta::KnowledgeRepository& distribution,
                           DurationSec window);

}  // namespace dml::online
