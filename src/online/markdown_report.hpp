// Markdown run reports: renders a DynamicDriver result (plus optional
// operational analysis) as a self-contained report an operator can file
// — per-interval accuracy, bootstrap confidence intervals, rule churn,
// and training-cost summaries.  `dmlfp run --report out.md` uses this.
#pragma once

#include <ostream>
#include <string>

#include "logio/event_store.hpp"
#include "online/driver.hpp"

namespace dml::online {

struct ReportOptions {
  std::string title = "Failure-prediction run report";
  /// Re-replay the final interval to include lead-time statistics
  /// (costs one extra predictor pass).
  bool include_lead_times = true;
  /// How many of the most frequent failure categories to break out.
  std::size_t top_categories = 8;
};

/// Writes the report; `store` must be the event store the driver ran on
/// (used for the per-category / lead-time sections).
void write_markdown_report(std::ostream& out, const DriverConfig& config,
                           const DriverResult& result,
                           const logio::EventStore& store,
                           const ReportOptions& options = {});

}  // namespace dml::online
