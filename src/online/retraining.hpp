// Retraining scheduling and snapshot building — the "learn" half of the
// serving core, shared by OnlineEngine, ShardedEngine and DynamicDriver.
//
// The scheduler owns the bounded event history, decides *when* a
// retraining boundary is due (event time, anchored at the first observed
// event), and builds each new rule set as an immutable
// meta::RepositorySnapshot — synchronously for deterministic replay, or
// on ThreadPool::shared() so the serving path never blocks on training
// (paper Table 5, Observation #8).  Adoption of an asynchronous build is
// still expressed in *event* time (`adoption_lag`), which keeps a replay
// bit-for-bit reproducible even though the build itself raced the
// stream.
#pragma once

#include <deque>
#include <future>
#include <optional>
#include <string_view>
#include <vector>

#include "bgl/record.hpp"
#include "meta/meta_learner.hpp"
#include "meta/snapshot.hpp"
#include "predict/predictor.hpp"
#include "predict/reviser.hpp"

namespace dml::online {

enum class TrainingMode {
  /// Train once on the initial span; never retrain.
  kStatic,
  /// Retrain every Wr weeks on the most recent `training_span` of events.
  kSlidingWindow,
  /// Retrain every Wr weeks on all history since the log began.
  kWholeHistory,
};

std::string_view to_string(TrainingMode mode);

/// Everything a retraining needs to know; a strict subset of the engine
/// and driver configs.
struct RetrainPolicy {
  DurationSec prediction_window = 300;
  /// Retraining cadence (event time).
  DurationSec retrain_interval = 4 * kSecondsPerWeek;
  /// Event time between the first event and the first boundary;
  /// 0 = retrain_interval.  The driver sets this to its initial
  /// training span.
  DurationSec initial_training_delay = 0;
  /// Sliding-window length (kSlidingWindow only); history beyond it is
  /// discarded at each boundary (bounded memory).
  DurationSec training_span = 26 * kSecondsPerWeek;
  /// Events required before a boundary actually trains.
  std::size_t min_training_events = 200;
  TrainingMode mode = TrainingMode::kSlidingWindow;
  bool use_reviser = true;
  predict::ReviserConfig reviser;
  meta::MetaLearnerConfig learner;
  /// Predictor options, needed to score candidate windows.
  predict::PredictorOptions predictor;
  /// Adaptive prediction-window selection (§7 future work); see
  /// DriverConfig for the semantics.
  bool adaptive_window = false;
  std::vector<DurationSec> window_candidates = {60, 300, 900, 1800};
  double validation_fraction = 0.25;
  /// Build snapshots on ThreadPool::shared() instead of inline.
  bool async = false;
  /// Event-time delay from a boundary B to the adoption of its build
  /// (async only).  > 0: the build is adopted exactly at B + lag —
  /// deterministic in event time (poll() joins the build if the stream
  /// got there first).  0: adopted at the first event after the build
  /// happens to finish — lowest latency, not replay-deterministic.
  DurationSec adoption_lag = 0;
  /// Build-failure degradation: a build that throws (out of the learner,
  /// reviser, or a `retrain.build` failpoint) is retried up to this many
  /// total attempts; when they are all spent the boundary is abandoned,
  /// recorded in failures(), and the last good snapshot stays in force —
  /// a retrain failure never crashes the serving loop.
  std::size_t max_build_attempts = 3;
  /// Wall-clock backoff before each retry, doubling per attempt.
  std::uint32_t retry_backoff_ms = 10;
};

/// One finished retraining: the frozen rule set plus the bookkeeping the
/// driver reports per interval (Figure 12 churn, Table 5 timings).
struct SnapshotBuild {
  meta::RepositorySnapshot repository;
  /// Prediction window the rules were mined with (== the window the
  /// predictor must serve them with).
  DurationSec window = 300;
  /// Boundary that scheduled the build.
  TimeSec scheduled_at = 0;
  /// Event time at which the serving side adopts the snapshot.
  TimeSec activate_at = 0;
  meta::KnowledgeRepository::Churn churn;
  meta::KnowledgeRepository::Churn churn_meta;
  std::size_t rules_from_meta = 0;
  std::size_t rules_removed_by_reviser = 0;
  meta::TrainTimes train_times;
  double revise_seconds = 0.0;
  /// Nonzero when every build attempt failed (asynchronous path): the
  /// failure rides the future as *data* rather than a rethrown
  /// exception, so the pool thread's disposal of the task state never
  /// races the owner reading the error text.  `repository` is null.
  std::size_t failed_attempts = 0;
  std::string error;
  /// Stage that failed: a learner name (learners::to_string) when one
  /// base learner threw, "build" otherwise.
  std::string failed_stage;

  bool failed() const { return failed_attempts > 0; }
};

/// One abandoned retraining boundary: every build attempt threw.  The
/// serving side keeps the previously adopted snapshot — degradation the
/// report can surface, never a crash.
struct RetrainFailure {
  TimeSec boundary = 0;
  std::size_t attempts = 0;
  std::string error;
  /// Per-learner attribution: the failing learner's name
  /// (learners::to_string(RuleSource)), or "build" when the failure was
  /// not attributable to one base learner (reviser, failpoint, ...).
  std::string stage;
};

class RetrainScheduler {
 public:
  explicit RetrainScheduler(RetrainPolicy policy);

  RetrainScheduler(const RetrainScheduler&) = delete;
  RetrainScheduler& operator=(const RetrainScheduler&) = delete;

  /// Joins any in-flight build.
  ~RetrainScheduler();

  enum class BoundaryAction {
    kNone,     ///< gate failed (too few events) or a build is in flight
    kRetrain,  ///< a build was started (async) or completed (sync)
    kRefresh,  ///< static mode after the first training: rules unchanged,
               ///< but the serving side should refresh its predictor
  };

  /// Advances the boundary schedule to event time t.  Returns the due
  /// boundary (the latest one <= t when several were skipped), or
  /// nullopt.  The first call anchors the schedule.
  std::optional<TimeSec> boundary_due(TimeSec t);

  /// Fires a boundary: trims history per mode, checks the
  /// min_training_events gate, and starts (async) or runs (sync) the
  /// build.  Does not touch the boundary schedule, so forced retrains
  /// (`retrain_now`) can fire at arbitrary times.
  BoundaryAction fire(TimeSec boundary);

  /// Appends one preprocessed event to the training history.  Events at
  /// a boundary must be observed *after* fire() so the boundary's
  /// training set is exactly the events strictly before it.
  void observe(const bgl::Event& event);

  /// Returns a finished build once event time t reaches its adoption
  /// point: immediately after a synchronous fire(); at scheduled_at +
  /// adoption_lag for async (joining the build if it is still running);
  /// at the first poll that finds the build complete for adoption_lag 0.
  std::optional<SnapshotBuild> poll(TimeSec t);

  /// Forces completion of any outstanding build and returns it with
  /// activate_at = t (retrain_now / end-of-stream).
  std::optional<SnapshotBuild> join(TimeSec t);

  bool build_in_flight() const;
  std::size_t history_size() const { return history_.size(); }
  const std::deque<bgl::Event>& history() const { return history_; }
  /// Prediction window currently in force (moves in adaptive mode).
  DurationSec current_window() const { return window_; }
  /// Number of trainings actually scheduled/run (gate passes).
  std::uint64_t retrainings() const { return retrainings_; }

  /// Boundaries abandoned because every build attempt failed (the
  /// degradation log; the snapshot in force was left untouched).  Only
  /// grows at fire()/poll()/join() — i.e. on the owner's thread.
  const std::vector<RetrainFailure>& failures() const { return failures_; }

 private:
  SnapshotBuild run_build(const std::vector<bgl::Event>& training,
                          TimeSec boundary,
                          meta::RepositorySnapshot previous) const;
  SnapshotBuild run_build_with_retry(const std::vector<bgl::Event>& training,
                                     TimeSec boundary,
                                     meta::RepositorySnapshot previous) const;
  std::optional<SnapshotBuild> take_pending(TimeSec activate_at);

  RetrainPolicy policy_;
  std::deque<bgl::Event> history_;
  std::optional<TimeSec> anchor_;
  std::optional<TimeSec> next_boundary_;
  bool trained_once_ = false;
  DurationSec window_;
  /// Last built (revised) rule set — the `previous` of the next diff.
  meta::RepositorySnapshot latest_;
  /// Finished synchronous build waiting for the next poll().
  std::optional<SnapshotBuild> ready_;
  /// In-flight asynchronous build.
  std::future<SnapshotBuild> pending_;
  TimeSec pending_scheduled_ = 0;
  std::uint64_t retrainings_ = 0;
  std::vector<RetrainFailure> failures_;
};

}  // namespace dml::online
