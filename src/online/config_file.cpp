#include "online/config_file.hpp"

#include <charconv>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <map>

#include "common/string_util.hpp"

namespace dml::online {
namespace {

std::optional<double> parse_double(std::string_view s) {
  char buf[64];
  if (s.size() >= sizeof(buf) || s.empty()) return std::nullopt;
  std::memcpy(buf, s.data(), s.size());
  buf[s.size()] = '\0';
  char* end = nullptr;
  const double value = std::strtod(buf, &end);
  if (end != buf + s.size()) return std::nullopt;
  return value;
}

std::optional<long> parse_long(std::string_view s) {
  long value = 0;
  auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), value);
  if (ec != std::errc{} || ptr != s.data() + s.size()) return std::nullopt;
  return value;
}

std::optional<bool> parse_bool(std::string_view s) {
  if (s == "true" || s == "1" || s == "yes") return true;
  if (s == "false" || s == "0" || s == "no") return false;
  return std::nullopt;
}

/// Per-key setter; returns an error message or empty on success.
using Setter =
    std::function<std::string(DriverConfig&, std::string_view value)>;

std::string set_long(std::string_view value, long lo, long hi, long* out) {
  const auto parsed = parse_long(value);
  if (!parsed || *parsed < lo || *parsed > hi) {
    return "expected an integer in [" + std::to_string(lo) + ", " +
           std::to_string(hi) + "]";
  }
  *out = *parsed;
  return {};
}

std::string set_double(std::string_view value, double lo, double hi,
                       double* out) {
  const auto parsed = parse_double(value);
  if (!parsed || *parsed < lo || *parsed > hi) {
    return "expected a number in [" + std::to_string(lo) + ", " +
           std::to_string(hi) + "]";
  }
  *out = *parsed;
  return {};
}

std::string set_bool(std::string_view value, bool* out) {
  const auto parsed = parse_bool(value);
  if (!parsed) return "expected true/false";
  *out = *parsed;
  return {};
}

const std::map<std::string, Setter, std::less<>>& setters() {
  static const std::map<std::string, Setter, std::less<>> table = {
      {"prediction_window",
       [](DriverConfig& c, std::string_view v) {
         long seconds = 0;
         auto error = set_long(v, 1, 7 * 86400, &seconds);
         if (error.empty()) {
           c.prediction_window = seconds;
           c.clock_tick = seconds;
         }
         return error;
       }},
      {"retrain_weeks",
       [](DriverConfig& c, std::string_view v) {
         long weeks = 0;
         auto error = set_long(v, 1, 520, &weeks);
         if (error.empty()) c.retrain_weeks = static_cast<int>(weeks);
         return error;
       }},
      {"training_weeks",
       [](DriverConfig& c, std::string_view v) {
         long weeks = 0;
         auto error = set_long(v, 1, 520, &weeks);
         if (error.empty()) c.training_weeks = static_cast<int>(weeks);
         return error;
       }},
      {"mode",
       [](DriverConfig& c, std::string_view v) -> std::string {
         if (v == "sliding") {
           c.mode = TrainingMode::kSlidingWindow;
         } else if (v == "whole") {
           c.mode = TrainingMode::kWholeHistory;
         } else if (v == "static") {
           c.mode = TrainingMode::kStatic;
         } else {
           return "expected sliding | whole | static";
         }
         return {};
       }},
      {"use_reviser",
       [](DriverConfig& c, std::string_view v) {
         return set_bool(v, &c.use_reviser);
       }},
      {"min_roc",
       [](DriverConfig& c, std::string_view v) {
         return set_double(v, 0.0, 1.5, &c.reviser.min_roc);
       }},
      {"min_support",
       [](DriverConfig& c, std::string_view v) {
         return set_double(v, 0.0, 1.0, &c.learner.association.min_support);
       }},
      {"min_confidence",
       [](DriverConfig& c, std::string_view v) {
         return set_double(v, 0.0, 1.0,
                           &c.learner.association.min_confidence);
       }},
      {"min_antecedent",
       [](DriverConfig& c, std::string_view v) {
         long n = 0;
         auto error = set_long(v, 1, 8, &n);
         if (error.empty()) {
           c.learner.association.min_antecedent =
               static_cast<std::size_t>(n);
         }
         return error;
       }},
      {"statistical_threshold",
       [](DriverConfig& c, std::string_view v) {
         return set_double(v, 0.0, 1.0,
                           &c.learner.statistical.min_probability);
       }},
      {"distribution_threshold",
       [](DriverConfig& c, std::string_view v) {
         return set_double(v, 0.0, 0.999,
                           &c.learner.distribution.cdf_threshold);
       }},
      {"enable_decision_tree",
       [](DriverConfig& c, std::string_view v) {
         return set_bool(v, &c.learner.enable_decision_tree);
       }},
      {"enable_neural_net",
       [](DriverConfig& c, std::string_view v) {
         return set_bool(v, &c.learner.enable_neural_net);
       }},
      {"enable_correlation",
       [](DriverConfig& c, std::string_view v) {
         return set_bool(v, &c.learner.enable_correlation);
       }},
      {"correlation_window",
       [](DriverConfig& c, std::string_view v) {
         long n = 0;
         auto error = set_long(v, 1, 86400, &n);
         if (error.empty()) {
           c.learner.correlation.graph.window = n;
         }
         return error;
       }},
      {"correlation_min_edge_confidence",
       [](DriverConfig& c, std::string_view v) {
         return set_double(
             v, 0.0, 1.0,
             &c.learner.correlation.miner.min_edge_confidence);
       }},
      {"pd_horizon_factor",
       [](DriverConfig& c, std::string_view v) {
         return set_double(v, 0.0, 100.0, &c.predictor.pd_horizon_factor);
       }},
      {"location_scoped",
       [](DriverConfig& c, std::string_view v) {
         return set_bool(v, &c.predictor.location_scoped);
       }},
      {"adaptive_window",
       [](DriverConfig& c, std::string_view v) {
         return set_bool(v, &c.adaptive_window);
       }},
  };
  return table;
}

}  // namespace

std::variant<DriverConfig, ConfigError> parse_driver_config(
    std::istream& in) {
  DriverConfig config;
  std::string line;
  std::size_t line_number = 0;
  while (std::getline(in, line)) {
    ++line_number;
    std::string_view view = trim(line);
    const std::size_t comment = view.find('#');
    if (comment != std::string_view::npos) {
      view = trim(view.substr(0, comment));
    }
    if (view.empty()) continue;
    const std::size_t eq = view.find('=');
    if (eq == std::string_view::npos) {
      return ConfigError{line_number, "expected 'key = value'"};
    }
    const std::string_view key = trim(view.substr(0, eq));
    const std::string_view value = trim(view.substr(eq + 1));
    const auto it = setters().find(key);
    if (it == setters().end()) {
      return ConfigError{line_number,
                         "unknown key '" + std::string(key) + "'"};
    }
    const std::string error = it->second(config, value);
    if (!error.empty()) {
      return ConfigError{line_number,
                         std::string(key) + ": " + error};
    }
  }
  return config;
}

std::string render_driver_config(const DriverConfig& config) {
  char buf[1024];
  std::snprintf(
      buf, sizeof(buf),
      "# dmlfp driver configuration\n"
      "prediction_window = %lld\n"
      "retrain_weeks = %d\n"
      "training_weeks = %d\n"
      "mode = %s\n"
      "use_reviser = %s\n"
      "min_roc = %g\n"
      "min_support = %g\n"
      "min_confidence = %g\n"
      "min_antecedent = %zu\n"
      "statistical_threshold = %g\n"
      "distribution_threshold = %g\n"
      "enable_decision_tree = %s\n"
      "enable_neural_net = %s\n"
      "enable_correlation = %s\n"
      "correlation_window = %lld\n"
      "correlation_min_edge_confidence = %g\n"
      "pd_horizon_factor = %g\n"
      "location_scoped = %s\n"
      "adaptive_window = %s\n",
      static_cast<long long>(config.prediction_window), config.retrain_weeks,
      config.training_weeks, std::string(to_string(config.mode)).c_str(),
      config.use_reviser ? "true" : "false", config.reviser.min_roc,
      config.learner.association.min_support,
      config.learner.association.min_confidence,
      config.learner.association.min_antecedent,
      config.learner.statistical.min_probability,
      config.learner.distribution.cdf_threshold,
      config.learner.enable_decision_tree ? "true" : "false",
      config.learner.enable_neural_net ? "true" : "false",
      config.learner.enable_correlation ? "true" : "false",
      static_cast<long long>(config.learner.correlation.graph.window),
      config.learner.correlation.miner.min_edge_confidence,
      config.predictor.pd_horizon_factor,
      config.predictor.location_scoped ? "true" : "false",
      config.adaptive_window ? "true" : "false");
  return buf;
}

}  // namespace dml::online
