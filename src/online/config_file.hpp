// Key = value configuration files for the dynamic driver, so deployments
// can version their prediction settings ("dmlfp run --config prod.conf").
//
// Format: one `key = value` per line; '#' comments; unknown keys are
// errors (typos should not silently fall back to defaults).  Keys mirror
// the DriverConfig/MetaLearnerConfig/PredictorOptions fields:
//
//   prediction_window   = 300        # seconds
//   retrain_weeks       = 4
//   training_weeks      = 26
//   mode                = sliding    # sliding | whole | static
//   use_reviser         = true
//   min_roc             = 0.7
//   min_support         = 0.01
//   min_confidence      = 0.1
//   min_antecedent      = 2
//   statistical_threshold   = 0.8
//   distribution_threshold  = 0.6
//   enable_decision_tree    = false
//   enable_neural_net       = false
//   pd_horizon_factor   = 6.0
//   location_scoped     = false
//   adaptive_window     = false
#pragma once

#include <istream>
#include <string>
#include <variant>

#include "online/driver.hpp"

namespace dml::online {

struct ConfigError {
  std::size_t line = 0;
  std::string message;
};

/// Parses a config stream into a DriverConfig (starting from defaults).
/// Returns the first error encountered, if any.
std::variant<DriverConfig, ConfigError> parse_driver_config(std::istream& in);

/// Renders a config back to text (every supported key, current values) —
/// `dmlfp` uses it to emit a template.
std::string render_driver_config(const DriverConfig& config);

}  // namespace dml::online
