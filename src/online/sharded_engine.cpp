#include "online/sharded_engine.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <deque>
#include <exception>
#include <limits>
#include <thread>
#include <tuple>
#include <variant>

#include "bgl/location.hpp"
#include "common/annotations.hpp"
#include "common/check.hpp"
#include "common/failpoint.hpp"
#include "online/serving.hpp"

namespace dml::online {
namespace {

/// Messages flowing producer -> shard worker, in time order per shard.
struct EventMsg {
  bgl::Event event;
};
/// A time-ordered run of events for one shard — feed_batch()'s
/// amortization: one queue handoff (one lock/notify) per run instead of
/// per event.  Workers serve the run event by event, so failpoint and
/// quarantine behaviour are indistinguishable from a run of EventMsg.
struct EventBatchMsg {
  std::vector<bgl::Event> events;
};
struct AdoptMsg {
  /// Shared: one build fans out to every shard.
  std::shared_ptr<const SnapshotBuild> build;
};
struct RefreshMsg {
  TimeSec at = 0;
};
struct FlushMsg {
  /// Fire ticks strictly before this instant and advance the watermark
  /// to it (heartbeat / end of stream).
  TimeSec to = 0;
};
using Message =
    std::variant<EventMsg, EventBatchMsg, AdoptMsg, RefreshMsg, FlushMsg>;

/// Single-producer single-consumer bounded queue.  push() blocks when
/// full — that is the backpressure contract: a slow shard throttles the
/// producer instead of buffering without bound.
class BoundedQueue {
 public:
  explicit BoundedQueue(std::size_t capacity)
      : capacity_(std::max<std::size_t>(1, capacity)) {}

  void push(Message message) DML_EXCLUDES(mutex_) {
    common::MutexLock lock(mutex_);
    while (queue_.size() >= capacity_ && !closed_) not_full_.wait(lock);
    if (closed_) return;  // receiver died; drop to let the producer finish
    queue_.push_back(std::move(message));
    lock.unlock();
    not_empty_.notify_one();
  }

  /// Moves every queued message into `out`; blocks until at least one is
  /// available.  Returns false once the queue is closed and drained.
  bool pop_all(std::vector<Message>& out) DML_EXCLUDES(mutex_) {
    common::MutexLock lock(mutex_);
    while (queue_.empty() && !closed_) not_empty_.wait(lock);
    if (queue_.empty()) return false;
    out.assign(std::move_iterator(queue_.begin()),
               std::move_iterator(queue_.end()));
    queue_.clear();
    lock.unlock();
    not_full_.notify_one();
    return true;
  }

  void close() DML_EXCLUDES(mutex_) {
    {
      common::MutexLock lock(mutex_);
      closed_ = true;
    }
    not_empty_.notify_all();
    not_full_.notify_all();
  }

 private:
  const std::size_t capacity_;
  common::Mutex mutex_;
  common::CondVar not_full_;
  common::CondVar not_empty_;
  std::deque<Message> queue_ DML_GUARDED_BY(mutex_);
  bool closed_ DML_GUARDED_BY(mutex_) = false;
};

bool warning_before(const predict::Warning& a, const predict::Warning& b) {
  const auto key = [](const predict::Warning& w) {
    return std::tuple(
        w.issued_at, w.deadline, w.rule_id, static_cast<int>(w.source),
        w.category.value_or(std::numeric_limits<CategoryId>::max()),
        w.location ? w.location->packed()
                   : std::numeric_limits<std::uint32_t>::max());
  };
  return key(a) < key(b);
}

}  // namespace

/// Reorders the per-shard warning streams into one globally time-ordered
/// callback stream.  Each shard's own stream is nondecreasing in
/// issued_at; a warning is releasable once every shard's watermark has
/// passed its issue instant.  Ties across shards are broken by a fixed
/// field order so the merged sequence is identical for any shard count.
class ShardedEngine::WarningMerger {
 public:
  WarningMerger(std::size_t shards, WarningCallback callback)
      : callback_(std::move(callback)), buffers_(shards),
        watermarks_(shards, std::numeric_limits<TimeSec>::min()) {}

  /// Called by shard workers: appends `fresh` and releases everything
  /// now below the global watermark.  The callback runs under the merger
  /// lock, so it is serial — cheap callbacks only.
  void push(std::size_t shard, std::vector<predict::Warning>& fresh,
            TimeSec watermark) DML_EXCLUDES(mutex_) {
    common::MutexLock lock(mutex_);
    auto& buffer = buffers_[shard];
    // Contract: each shard's own stream is nondecreasing in issued_at —
    // the property release() relies on to cut buffers with one scan.
    DML_DCHECK(fresh.empty() || buffer.empty() ||
               buffer.back().issued_at <= fresh.front().issued_at);
    DML_DCHECK(std::is_sorted(fresh.begin(), fresh.end(),
                              [](const predict::Warning& a,
                                 const predict::Warning& b) {
                                return a.issued_at < b.issued_at;
                              }));
    buffer.insert(buffer.end(), fresh.begin(), fresh.end());
    // Watermarks only advance (monotone per shard by construction).
    watermarks_[shard] = std::max(watermarks_[shard], watermark);
    release(*std::min_element(watermarks_.begin(), watermarks_.end()));
  }

  /// End of stream: every remaining buffered warning goes out in order.
  void finish() DML_EXCLUDES(mutex_) {
    common::MutexLock lock(mutex_);
    release(std::numeric_limits<TimeSec>::max());
  }

  std::uint64_t emitted() const DML_EXCLUDES(mutex_) {
    common::MutexLock lock(mutex_);
    return emitted_;
  }

 private:
  /// Emits every buffered warning with issued_at strictly below `safe`.
  /// (Strict: a shard at watermark t can still issue at t itself — a
  /// tick at t fires only when the shard moves past t.)
  void release(TimeSec safe) DML_REQUIRES(mutex_) {
    scratch_.clear();
    for (auto& buffer : buffers_) {
      auto cut = std::find_if(buffer.begin(), buffer.end(),
                              [&](const predict::Warning& w) {
                                return w.issued_at >= safe;
                              });
      scratch_.insert(scratch_.end(), buffer.begin(), cut);
      buffer.erase(buffer.begin(), cut);
    }
    std::sort(scratch_.begin(), scratch_.end(), warning_before);
    for (const auto& warning : scratch_) {
      ++emitted_;
      if (callback_) callback_(warning);
    }
  }

  WarningCallback callback_;
  mutable common::Mutex mutex_;
  /// Per-shard pending warnings, each nondecreasing in issued_at.
  std::vector<std::vector<predict::Warning>> buffers_ DML_GUARDED_BY(mutex_);
  std::vector<TimeSec> watermarks_ DML_GUARDED_BY(mutex_);
  std::vector<predict::Warning> scratch_ DML_GUARDED_BY(mutex_);
  std::uint64_t emitted_ DML_GUARDED_BY(mutex_) = 0;
};

struct ShardedEngine::Shard {
  explicit Shard(std::size_t queue_capacity) : queue(queue_capacity) {}

  BoundedQueue queue;
  std::thread thread;
  std::atomic<std::uint64_t> events{0};
  std::atomic<std::uint64_t> fatals{0};
  std::atomic<std::uint64_t> warnings{0};
  /// Events not served: drop-failpoint skips plus everything drained
  /// after quarantine.
  std::atomic<std::uint64_t> rejected{0};
  std::atomic<double> busy_seconds{0.0};
  std::exception_ptr error;
};

namespace {

RetrainPolicy sharded_policy(const OnlineEngineConfig& config) {
  RetrainPolicy policy;
  policy.prediction_window = config.prediction_window;
  policy.retrain_interval = config.retrain_interval;
  policy.initial_training_delay = config.initial_training_delay;
  policy.training_span = config.training_span;
  policy.min_training_events = config.min_training_events;
  policy.mode = config.mode;
  policy.use_reviser = config.use_reviser;
  policy.reviser = config.reviser;
  policy.learner = config.learner;
  policy.predictor = config.predictor;
  policy.adaptive_window = config.adaptive_window;
  policy.window_candidates = config.window_candidates;
  policy.validation_fraction = config.validation_fraction;
  policy.async = config.async_retrain;
  // Deterministic adoption: with no explicit lag, adopt one prediction
  // window after the boundary — enough slack for a build to finish in
  // the background at realistic event rates.
  policy.adoption_lag = config.adoption_lag > 0 ? config.adoption_lag
                                                : config.prediction_window;
  // The tree/net experts build features over the whole machine's recent
  // stream, which does not decompose by midplane; drop them so sharded
  // and single-shard runs see the same rule space.
  policy.learner.enable_decision_tree = false;
  policy.learner.enable_neural_net = false;
  policy.predictor.location_scoped = true;
  policy.predictor.per_scope_state = true;
  return policy;
}

ServingCore::Options sharded_serving_options(const OnlineEngineConfig& config,
                                             const RetrainPolicy& policy) {
  ServingCore::Options options;
  options.clock_tick = config.clock_tick;
  options.predictor = policy.predictor;
  // Absolute grid: every shard ticks at the same instants regardless of
  // which events it happens to receive.
  options.tick_anchor = ServingCore::TickAnchor::kAbsolute;
  options.tick_follows_window = false;
  // Each shard warms fresh predictors from its own trailing buffer; keep
  // the largest window a build could adopt.
  DurationSec retention = policy.prediction_window;
  if (policy.adaptive_window) {
    for (const auto candidate : policy.window_candidates) {
      retention = std::max(retention, candidate);
    }
  }
  options.warm_retention = retention;
  return options;
}

}  // namespace

ShardedEngine::ShardedEngine(ShardedEngineConfig config,
                             WarningCallback on_warning)
    : config_(std::move(config)),
      on_warning_(std::move(on_warning)),
      pipeline_(config_.engine.filter_threshold),
      scheduler_(sharded_policy(config_.engine)) {
  std::size_t n = config_.shards;
  if (n == 0) n = std::max(1u, std::thread::hardware_concurrency());
  merger_ = std::make_unique<WarningMerger>(
      n, [this](const predict::Warning& w) {
        if (w.issued_at < suppress_until_.load(std::memory_order_relaxed)) {
          suppressed_warnings_.fetch_add(1, std::memory_order_relaxed);
          return;
        }
        if (on_warning_) on_warning_(w);
      });
  publisher_.store(meta::empty_snapshot());
  shards_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    shards_.push_back(std::make_unique<Shard>(config_.queue_capacity));
  }
  for (std::size_t i = 0; i < n; ++i) {
    shards_[i]->thread = std::thread([this, i] { worker(i); });
  }
}

ShardedEngine::~ShardedEngine() {
  try {
    finish();
  } catch (...) {
    // Destructor swallows worker failures; call finish() to observe them.
  }
}

std::size_t ShardedEngine::shard_of(const bgl::Event& event) const {
  return bgl::LocationHash{}(event.location.enclosing_midplane()) %
         shards_.size();
}

void ShardedEngine::consume(const bgl::RasRecord& record) {
  ++records_consumed_;
  if (auto event = pipeline_.push(record)) feed(*event);
}

void ShardedEngine::cold_start(const storage::EventRepository& repo,
                               TimeSec serve_from) {
  DML_CHECK(records_consumed_ == 0 && !finished_);
  if (repo.empty() || serve_from <= repo.first_time()) return;
  suppress_until_.store(serve_from, std::memory_order_relaxed);
  auto cursor = repo.scan(repo.first_time(), serve_from);
  std::vector<bgl::Event> batch;
  while (true) {
    batch.clear();
    if (cursor->next(batch, storage::kDefaultScanBatch) == 0) break;
    cold_start_events_ += batch.size();
    feed_batch(batch);
  }
}

void ShardedEngine::consume(const bgl::Event& event) {
  ++records_consumed_;
  feed(event);
}

void ShardedEngine::consume_batch(std::span<const bgl::Event> events) {
  records_consumed_ += events.size();
  feed_batch(events);
}

void ShardedEngine::flush_feed_runs() {
  for (std::size_t i = 0; i < feed_runs_.size(); ++i) {
    if (feed_runs_[i].empty()) continue;
    shards_[i]->queue.push(EventBatchMsg{std::move(feed_runs_[i])});
    feed_runs_[i].clear();  // moved-from: valid and empty
  }
}

void DML_HOT ShardedEngine::feed_batch(std::span<const bgl::Event> events) {
  if (feed_runs_.size() != shards_.size()) {
    DML_ALLOW_ALLOC("one-time growth to the shard count; no-op at steady "
                    "state");
    feed_runs_.resize(shards_.size());
  }
  try {
    for (const bgl::Event& event : events) {
      // Same per-event sequence as feed(): the `engine.feed` failpoint
      // fires once per event, and schedule decisions happen at the same
      // stream positions.  Only the final queue handoff is batched.
      switch (common::failpoint(common::failpoints::kEngineFeed)) {
        case common::FailAction::kDrop:
        case common::FailAction::kCorrupt:
          ++feed_rejected_;
          continue;
        default:
          break;
      }
      const TimeSec t = event.time;
      if (const auto boundary = scheduler_.boundary_due(t)) {
        const auto action = scheduler_.fire(*boundary);
        if (action == RetrainScheduler::BoundaryAction::kRefresh) {
          // Control messages follow the events that preceded them in
          // every shard's queue, exactly as the serial path orders them.
          flush_feed_runs();
          for (auto& shard : shards_) {
            DML_ALLOW_ALLOC("control-plane handoff at a retrain boundary "
                            "(rare; bounded by the schedule cadence)");
            shard->queue.push(RefreshMsg{*boundary});
          }
        }
      }
      if (auto build = scheduler_.poll(t)) {
        DML_ALLOW_ALLOC("snapshot adoption: one shared_ptr per completed "
                        "retrain build, never per event");
        auto shared = std::make_shared<const SnapshotBuild>(std::move(*build));
        retrain_build_seconds_ +=
            shared->train_times.total_seconds() + shared->revise_seconds;
        retrain_train_times_ += shared->train_times;
        retrain_revise_seconds_ += shared->revise_seconds;
        publisher_.store(shared->repository);
        flush_feed_runs();
        DML_ALLOW_ALLOC("control-plane handoff at snapshot adoption (rare)");
        for (auto& shard : shards_) shard->queue.push(AdoptMsg{shared});
      }
      if (config_.heartbeat_interval > 0 &&
          (!next_heartbeat_ || *next_heartbeat_ <= t)) {
        flush_feed_runs();
        broadcast_heartbeats(t);
      }
      scheduler_.observe(event);
      last_event_time_ = std::max(last_event_time_, t);
      DML_ALLOW_ALLOC("run buffers retain capacity across batches; the "
                      "append is amortized O(1) with no steady-state growth");
      feed_runs_[shard_of(event)].push_back(event);
    }
  } catch (...) {
    // A throw (engine.feed failpoint) must leave the prefix fed, as the
    // serial path would: hand over what is buffered, then propagate.
    flush_feed_runs();
    throw;
  }
  flush_feed_runs();
}

void ShardedEngine::broadcast_heartbeats(TimeSec t) {
  if (config_.heartbeat_interval <= 0) return;
  if (!next_heartbeat_) {
    next_heartbeat_ = t + config_.heartbeat_interval;
    return;
  }
  while (*next_heartbeat_ <= t) {
    for (auto& shard : shards_) {
      shard->queue.push(FlushMsg{*next_heartbeat_});
    }
    *next_heartbeat_ += config_.heartbeat_interval;
  }
}

void ShardedEngine::feed(const bgl::Event& event) {
  // Fault injection: `engine.feed` drop/corrupt discards the event
  // before it reaches the scheduler or any shard (a counted skip);
  // throw propagates to the producer, delay stalls it.
  switch (common::failpoint(common::failpoints::kEngineFeed)) {
    case common::FailAction::kDrop:
    case common::FailAction::kCorrupt:
      ++feed_rejected_;
      return;
    default:
      break;
  }
  const TimeSec t = event.time;
  // Boundary/adoption decisions happen on the producer so every shard
  // sees them at the same position in its event sequence.
  if (const auto boundary = scheduler_.boundary_due(t)) {
    const auto action = scheduler_.fire(*boundary);
    if (action == RetrainScheduler::BoundaryAction::kRefresh) {
      for (auto& shard : shards_) shard->queue.push(RefreshMsg{*boundary});
    }
  }
  if (auto build = scheduler_.poll(t)) {
    auto shared = std::make_shared<const SnapshotBuild>(std::move(*build));
    retrain_build_seconds_ +=
        shared->train_times.total_seconds() + shared->revise_seconds;
    retrain_train_times_ += shared->train_times;
    retrain_revise_seconds_ += shared->revise_seconds;
    publisher_.store(shared->repository);
    for (auto& shard : shards_) shard->queue.push(AdoptMsg{shared});
  }
  broadcast_heartbeats(t);
  scheduler_.observe(event);
  last_event_time_ = std::max(last_event_time_, t);
  shards_[shard_of(event)]->queue.push(EventMsg{event});
}

void ShardedEngine::note_quarantine(std::size_t index, TimeSec at,
                                    std::string what) {
  common::MutexLock lock(quarantine_mutex_);
  quarantines_.push_back({DegradationEvent::Kind::kShardQuarantined, at, 1,
                          "shard " + std::to_string(index) +
                              " quarantined: " + std::move(what)});
}

void ShardedEngine::worker(std::size_t index) {
  Shard& shard = *shards_[index];
  ServingCore core(
      sharded_serving_options(config_.engine, sharded_policy(config_.engine)));
  std::vector<Message> batch;
  std::vector<predict::Warning> out;
  TimeSec watermark = std::numeric_limits<TimeSec>::min();
  // Advances the watermark without serving — the quarantine drain: the
  // merged stream (and the producer, via backpressure relief) must keep
  // moving even when this shard has stopped serving.
  const auto drain = [&](const Message& message) {
    if (const auto* msg = std::get_if<EventMsg>(&message)) {
      watermark = std::max(watermark, msg->event.time);
      shard.rejected.fetch_add(1, std::memory_order_relaxed);
    } else if (const auto* flush = std::get_if<FlushMsg>(&message)) {
      watermark = std::max(watermark, flush->to);
    }
  };
  // One event of an EventMsg or EventBatchMsg, exactly the per-event
  // sequence: failpoint, then serve, then counters and watermark.
  const auto serve_event = [&](const bgl::Event& event) {
    // Fault injection: throw quarantines this shard, delay stalls
    // its queue (backpressure), drop skips the event (counted).
    const auto action = common::failpoint(common::failpoints::kShardWorker);
    if (action == common::FailAction::kDrop ||
        action == common::FailAction::kCorrupt) {
      shard.rejected.fetch_add(1, std::memory_order_relaxed);
      watermark = std::max(watermark, event.time);
      return;
    }
    core.observe(event, out);
    shard.events.fetch_add(1, std::memory_order_relaxed);
    if (event.fatal) {
      shard.fatals.fetch_add(1, std::memory_order_relaxed);
    }
    watermark = std::max(watermark, event.time);
  };
  const auto drain_event = [&](const bgl::Event& event) {
    watermark = std::max(watermark, event.time);
    shard.rejected.fetch_add(1, std::memory_order_relaxed);
  };
  // Quarantine bookkeeping happens after the faulting unit is drained,
  // so the recorded watermark covers it (matching the serial path).
  const auto quarantine = [&](const std::string& what) {
    note_quarantine(index, watermark, what);
  };
  while (shard.queue.pop_all(batch)) {
    const auto start = std::chrono::steady_clock::now();
    for (auto& message : batch) {
      // A batched run is served event by event so a throw mid-run
      // quarantines at the faulting event and drains only the rest —
      // indistinguishable from the same run of single EventMsg.
      if (auto* run = std::get_if<EventBatchMsg>(&message)) {
        for (const bgl::Event& event : run->events) {
          if (shard.error) {
            drain_event(event);
            continue;
          }
          try {
            serve_event(event);
          } catch (const std::exception& e) {
            shard.error = std::current_exception();
            out.clear();
            drain_event(event);
            quarantine(e.what());
          } catch (...) {
            shard.error = std::current_exception();
            out.clear();
            drain_event(event);
            quarantine("unknown exception");
          }
        }
        continue;
      }
      if (shard.error) {
        drain(message);
        continue;
      }
      try {
        if (auto* msg = std::get_if<EventMsg>(&message)) {
          serve_event(msg->event);
        } else if (auto* adopt = std::get_if<AdoptMsg>(&message)) {
          core.adopt(*adopt->build, out);
        } else if (auto* refresh = std::get_if<RefreshMsg>(&message)) {
          core.refresh(refresh->at, out);
        } else if (auto* flush = std::get_if<FlushMsg>(&message)) {
          core.flush(flush->to, out);
          watermark = std::max(watermark, flush->to);
        }
      } catch (const std::exception& e) {
        shard.error = std::current_exception();
        out.clear();
        drain(message);
        quarantine(e.what());
      } catch (...) {
        shard.error = std::current_exception();
        out.clear();
        drain(message);
        quarantine("unknown exception");
      }
    }
    shard.busy_seconds.store(
        shard.busy_seconds.load(std::memory_order_relaxed) +
            std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                          start)
                .count(),
        std::memory_order_relaxed);
    // Push even when quarantined or warning-free: the watermark alone
    // releases other shards' buffered warnings, keeping the merged
    // stream monotone and live.
    if (!out.empty() ||
        watermark != std::numeric_limits<TimeSec>::min()) {
      shard.warnings.fetch_add(out.size(), std::memory_order_relaxed);
      merger_->push(index, out, watermark);
      out.clear();
    }
  }
}

ShardedEngine::SessionStats ShardedEngine::finish() {
  if (finished_) return final_stats_;
  finished_ = true;
  // A build still in flight past the end of the stream is abandoned
  // (identically for every shard count — it would activate after the
  // last event anyway).
  scheduler_.join(last_event_time_);
  // Flush every shard's tick grid to the same global end instant; ticks
  // fire strictly before it, matching a single predictor that stops at
  // the last event.
  if (last_event_time_ != 0) {
    for (auto& shard : shards_) {
      shard->queue.push(FlushMsg{last_event_time_});
    }
  }
  for (auto& shard : shards_) shard->queue.close();
  for (auto& shard : shards_) {
    if (shard->thread.joinable()) shard->thread.join();
  }
  merger_->finish();
  // Stats first: a rethrow must not lose the session's accounting — the
  // caller can catch and still read stats()/degradation_log().
  final_stats_ = collect_stats();
  if (config_.rethrow_worker_errors) {
    for (auto& shard : shards_) {
      if (shard->error) std::rethrow_exception(shard->error);
    }
  }
  return final_stats_;
}

ShardedEngine::SessionStats ShardedEngine::stats() const {
  if (finished_) return final_stats_;
  return collect_stats();
}

ShardedEngine::SessionStats ShardedEngine::collect_stats() const {
  SessionStats s;
  s.records_consumed = records_consumed_;
  s.records_rejected =
      feed_rejected_ + pipeline_.stats().dropped_by_failpoint;
  for (const auto& shard : shards_) {
    s.events_after_filtering +=
        shard->events.load(std::memory_order_relaxed);
    s.failures_seen += shard->fatals.load(std::memory_order_relaxed);
    s.records_rejected += shard->rejected.load(std::memory_order_relaxed);
    s.serving_seconds += shard->busy_seconds.load(std::memory_order_relaxed);
    if (shard->error) ++s.shards_quarantined;
  }
  s.warnings_issued =
      merger_->emitted() -
      suppressed_warnings_.load(std::memory_order_relaxed);
  s.cold_start_events = cold_start_events_;
  s.retrainings = scheduler_.retrainings();
  s.history_size = scheduler_.history_size();
  s.retrain_failures = scheduler_.failures().size();
  s.retrain_build_seconds = retrain_build_seconds_;
  s.retrain_train_times = retrain_train_times_;
  s.retrain_revise_seconds = retrain_revise_seconds_;
  return s;
}

std::vector<DegradationEvent> ShardedEngine::degradation_log() const {
  std::vector<DegradationEvent> log;
  for (const auto& failure : scheduler_.failures()) {
    log.push_back({DegradationEvent::Kind::kRetrainFailure, failure.boundary,
                   failure.attempts,
                   "retraining abandoned: " + failure.error});
  }
  {
    common::MutexLock lock(quarantine_mutex_);
    log.insert(log.end(), quarantines_.begin(), quarantines_.end());
  }
  std::uint64_t skipped =
      feed_rejected_ + pipeline_.stats().dropped_by_failpoint;
  for (const auto& shard : shards_) {
    skipped += shard->rejected.load(std::memory_order_relaxed);
  }
  if (skipped > 0) {
    log.push_back({DegradationEvent::Kind::kRecordsSkipped, last_event_time_,
                   static_cast<std::size_t>(skipped),
                   "records dropped or drained without serving"});
  }
  std::stable_sort(log.begin(), log.end(),
                   [](const DegradationEvent& a, const DegradationEvent& b) {
                     return a.at < b.at;
                   });
  return log;
}

std::vector<ShardedEngine::ShardReport> ShardedEngine::shard_reports() const {
  std::vector<ShardReport> reports;
  reports.reserve(shards_.size());
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    ShardReport report;
    report.index = i;
    report.events = shards_[i]->events.load(std::memory_order_relaxed);
    report.warnings = shards_[i]->warnings.load(std::memory_order_relaxed);
    report.busy_seconds =
        shards_[i]->busy_seconds.load(std::memory_order_relaxed);
    reports.push_back(report);
  }
  return reports;
}

}  // namespace dml::online
