#include "online/engine.hpp"

#include <vector>

namespace dml::online {

OnlineEngine::OnlineEngine(OnlineEngineConfig config,
                           WarningCallback on_warning)
    : config_(config),
      on_warning_(std::move(on_warning)),
      temporal_(config.filter_threshold),
      spatial_(config.filter_threshold),
      repository_(std::make_unique<meta::KnowledgeRepository>()) {}

void OnlineEngine::consume(const bgl::RasRecord& record) {
  ++session_.records_consumed;
  auto categorized = categorizer_.categorize(record);
  if (!categorized) return;
  auto after_temporal = temporal_.push(*categorized);
  if (!after_temporal) return;
  auto survivor = spatial_.push(*after_temporal);
  if (!survivor) return;

  bgl::Event event;
  event.time = survivor->record.event_time;
  event.category = survivor->category;
  event.job_id = survivor->record.job_id;
  event.location = survivor->record.location;
  event.fatal = survivor->fatal;
  observe(event);
}

void OnlineEngine::consume(const bgl::Event& event) {
  ++session_.records_consumed;
  observe(event);
}

void OnlineEngine::advance_clock(TimeSec t) {
  now_ = std::max(now_, t);
  if (!first_event_time_) {
    first_event_time_ = now_;
    next_retrain_ = now_ + config_.retrain_interval;
    if (config_.clock_tick > 0) next_tick_ = now_ + config_.clock_tick;
  }
  // Periodic PD self-checks between events.
  while (predictor_ && next_tick_ && *next_tick_ < t) {
    for (const auto& warning : predictor_->tick(*next_tick_)) {
      ++session_.warnings_issued;
      if (on_warning_) on_warning_(warning);
    }
    *next_tick_ += config_.clock_tick;
  }
  // Scheduled retraining.
  if (next_retrain_ && t >= *next_retrain_) {
    retrain(*next_retrain_);
    *next_retrain_ += config_.retrain_interval;
  }
}

void OnlineEngine::observe(const bgl::Event& event) {
  advance_clock(event.time);
  ++session_.events_after_filtering;
  if (event.fatal) ++session_.failures_seen;

  history_.push_back(event);
  while (!history_.empty() &&
         history_.front().time < now_ - config_.training_span) {
    history_.pop_front();
  }

  if (predictor_) {
    for (const auto& warning : predictor_->observe(event)) {
      ++session_.warnings_issued;
      if (on_warning_) on_warning_(warning);
    }
  }
}

void OnlineEngine::retrain_now() { retrain(now_); }

void OnlineEngine::retrain(TimeSec now) {
  if (history_.size() < config_.min_training_events) return;
  ++session_.retrainings;

  // The deque is contiguous only chunk-wise; copy into a flat span for
  // the learners.  Training sets are bounded by training_span so this
  // stays small.
  const std::vector<bgl::Event> training(history_.begin(), history_.end());
  const meta::MetaLearner learner(config_.learner);
  auto fresh = std::make_unique<meta::KnowledgeRepository>(
      learner.learn(training, config_.prediction_window));
  if (config_.use_reviser) {
    predict::revise(*fresh, training, config_.prediction_window,
                    config_.reviser);
  }
  repository_ = std::move(fresh);
  predictor_ = std::make_unique<predict::Predictor>(
      *repository_, config_.prediction_window, config_.predictor);
  // Warm the new predictor's window state on the trailing history so
  // in-flight patterns survive the swap (warnings suppressed).
  for (const auto& event : training) {
    if (event.time >= now - config_.prediction_window) {
      predictor_->observe(event);
    }
  }
}

OnlineEngine::SessionStats OnlineEngine::stats() const {
  SessionStats s = session_;
  s.history_size = history_.size();
  return s;
}

}  // namespace dml::online
