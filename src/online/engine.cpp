#include "online/engine.hpp"

#include <algorithm>
#include <chrono>

#include "common/check.hpp"

namespace dml::online {

std::string_view to_string(DegradationEvent::Kind kind) {
  switch (kind) {
    case DegradationEvent::Kind::kRetrainFailure: return "retrain-failure";
    case DegradationEvent::Kind::kShardQuarantined:
      return "shard-quarantined";
    case DegradationEvent::Kind::kRecordsSkipped: return "records-skipped";
  }
  return "unknown";
}

namespace {

RetrainPolicy make_policy(const OnlineEngineConfig& config) {
  RetrainPolicy policy;
  policy.prediction_window = config.prediction_window;
  policy.retrain_interval = config.retrain_interval;
  policy.initial_training_delay = config.initial_training_delay;
  policy.training_span = config.training_span;
  policy.min_training_events = config.min_training_events;
  policy.mode = config.mode;
  policy.use_reviser = config.use_reviser;
  policy.reviser = config.reviser;
  policy.learner = config.learner;
  policy.predictor = config.predictor;
  policy.adaptive_window = config.adaptive_window;
  policy.window_candidates = config.window_candidates;
  policy.validation_fraction = config.validation_fraction;
  policy.async = config.async_retrain;
  policy.adoption_lag = config.adoption_lag;
  return policy;
}

ServingCore::Options make_serving_options(const OnlineEngineConfig& config) {
  ServingCore::Options options;
  options.clock_tick = config.clock_tick;
  options.predictor = config.predictor;
  options.tick_anchor = config.absolute_ticks
                            ? ServingCore::TickAnchor::kAbsolute
                            : ServingCore::TickAnchor::kInterval;
  options.tick_follows_window = config.adaptive_window;
  return options;
}

}  // namespace

OnlineEngine::OnlineEngine(OnlineEngineConfig config,
                           WarningCallback on_warning)
    : config_(std::move(config)),
      on_warning_(std::move(on_warning)),
      pipeline_(config_.filter_threshold),
      scheduler_(make_policy(config_)),
      serving_(make_serving_options(config_)) {}

OnlineEngine::~OnlineEngine() = default;

void OnlineEngine::consume(const bgl::RasRecord& record) {
  ++session_.records_consumed;
  if (auto event = pipeline_.push(record)) observe(*event);
}

void OnlineEngine::consume(const bgl::Event& event) {
  ++session_.records_consumed;
  observe(event);
}

void OnlineEngine::consume_batch(std::span<const bgl::Event> events) {
  for (const bgl::Event& event : events) {
    ++session_.records_consumed;
    observe(event);
  }
}

void OnlineEngine::advance_to(TimeSec t) { step(t); }

void OnlineEngine::cold_start(const storage::EventRepository& repo,
                              TimeSec serve_from) {
  // Restart is only exact with deterministic inline builds: an async
  // build's adoption depends on wall time unless adoption_lag pins it,
  // and a fresh replay has no way to reproduce the race.
  DML_CHECK(!config_.async_retrain);
  DML_CHECK(session_.records_consumed == 0 &&
            session_.events_after_filtering == 0);
  if (repo.empty() || serve_from <= repo.first_time()) return;

  // Event time of the last adopt/refresh — serving state older than
  // this was discarded by the rebuild, so only the tail needs
  // re-observing.  No rebuild => predictor never existed => no tail.
  std::optional<TimeSec> last_rebuild;
  const auto silent_step = [&](TimeSec t) {
    now_ = std::max(now_, t);
    if (const auto boundary = scheduler_.boundary_due(t)) {
      const auto action = scheduler_.fire(*boundary);
      if (action == RetrainScheduler::BoundaryAction::kRefresh) {
        const auto warm = warm_tail(*boundary, serving_.window());
        serving_.refresh(*boundary, warm, scratch_);
        last_rebuild = *boundary;
      }
    }
    if (auto build = scheduler_.poll(now_)) {
      last_rebuild = build->activate_at;
      adopt(std::move(*build));
    }
    scratch_.clear();  // nothing before serve_from is ever emitted
  };

  auto cursor = repo.scan(repo.first_time(), serve_from);
  std::vector<bgl::Event> batch;
  while (true) {
    batch.clear();
    if (cursor->next(batch, storage::kDefaultScanBatch) == 0) break;
    for (const bgl::Event& event : batch) {
      silent_step(event.time);
      scheduler_.observe(event);
      ++session_.cold_start_events;
    }
  }
  // Fire boundaries strictly before serve_from; one exactly at
  // serve_from belongs to the resumed session (advance_to will run it).
  silent_step(serve_from - 1);

  // Re-observe the serving tail from the scheduler's history so the
  // predictor's window state, dedup memory and tick cursor match a
  // live engine at serve_from.  Interleaving advance+observe mirrors
  // the live step()/observe() order; warnings are discarded.
  if (last_rebuild.has_value()) {
    for (const auto& event : scheduler_.history()) {
      if (event.time < *last_rebuild) continue;
      serving_.advance(event.time, scratch_);
      serving_.observe(event, scratch_);
      scratch_.clear();
    }
  }
}

std::vector<bgl::Event> OnlineEngine::warm_tail(TimeSec at,
                                                DurationSec window) const {
  const auto& history = scheduler_.history();
  std::vector<bgl::Event> warm;
  for (auto it = history.rbegin(); it != history.rend(); ++it) {
    if (it->time < at - window) break;
    warm.push_back(*it);
  }
  std::reverse(warm.begin(), warm.end());
  return warm;
}

void OnlineEngine::adopt(SnapshotBuild build) {
  // Snapshot epoch ordering: adoptions land in nondecreasing event
  // time, so the retrain log reads as the serving timeline.
  DML_DCHECK(retrain_log_.empty() ||
             retrain_log_.back().activate_at <= build.activate_at);
  const auto warm = warm_tail(build.activate_at, build.window);
  serving_.adopt(build, warm, scratch_);
  retrain_log_.push_back(std::move(build));
}

void OnlineEngine::step(TimeSec t) {
  now_ = std::max(now_, t);
  if (const auto boundary = scheduler_.boundary_due(t)) {
    const auto action = scheduler_.fire(*boundary);
    if (action == RetrainScheduler::BoundaryAction::kRefresh) {
      const auto warm = warm_tail(*boundary, serving_.window());
      serving_.refresh(*boundary, warm, scratch_);
    }
  }
  if (auto build = scheduler_.poll(now_)) adopt(std::move(*build));
  serving_.advance(t, scratch_);
  emit();
}

void OnlineEngine::observe(const bgl::Event& event) {
  step(event.time);
  ++session_.events_after_filtering;
  if (event.fatal) ++session_.failures_seen;
  scheduler_.observe(event);
  if (config_.profile) {
    const auto t0 = std::chrono::steady_clock::now();
    serving_.observe(event, scratch_);
    session_.serving_seconds +=
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
  } else {
    serving_.observe(event, scratch_);
  }
  emit();
}

void OnlineEngine::retrain_now() {
  if (!scheduler_.build_in_flight()) {
    const auto action = scheduler_.fire(now_);
    if (action == RetrainScheduler::BoundaryAction::kRefresh) {
      const auto warm = warm_tail(now_, serving_.window());
      serving_.refresh(now_, warm, scratch_);
    }
  }
  if (auto build = scheduler_.join(now_)) adopt(std::move(*build));
  emit();
}

void OnlineEngine::finish() {
  if (auto build = scheduler_.join(now_)) adopt(std::move(*build));
  emit();
}

void OnlineEngine::emit() {
  for (const auto& warning : scratch_) {
    ++session_.warnings_issued;
    if (on_warning_) on_warning_(warning);
  }
  scratch_.clear();
}

OnlineEngine::SessionStats OnlineEngine::stats() const {
  SessionStats s = session_;
  s.retrainings = scheduler_.retrainings();
  s.history_size = scheduler_.history_size();
  s.records_rejected = pipeline_.stats().dropped_by_failpoint;
  s.retrain_failures = scheduler_.failures().size();
  for (const auto& build : retrain_log_) {
    s.retrain_build_seconds +=
        build.train_times.total_seconds() + build.revise_seconds;
    s.retrain_train_times += build.train_times;
    s.retrain_revise_seconds += build.revise_seconds;
  }
  return s;
}

std::vector<DegradationEvent> OnlineEngine::degradation_log() const {
  std::vector<DegradationEvent> log;
  for (const auto& failure : scheduler_.failures()) {
    log.push_back({DegradationEvent::Kind::kRetrainFailure, failure.boundary,
                   failure.attempts,
                   "retraining abandoned: " + failure.error});
  }
  const auto dropped = pipeline_.stats().dropped_by_failpoint;
  if (dropped > 0) {
    log.push_back({DegradationEvent::Kind::kRecordsSkipped, now_,
                   static_cast<std::size_t>(dropped),
                   "records dropped in preprocessing"});
  }
  return log;
}

}  // namespace dml::online
