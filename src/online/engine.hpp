// OnlineEngine: the deployable form of the framework.  Feed it raw RAS
// records (or pre-categorized events) as they arrive; it preprocesses
// them inline, retrains the meta-learner on schedule, keeps a bounded
// history, and invokes a callback for every failure warning — the
// runtime configuration of Figure 1 as a single embeddable object.
//
//   online::OnlineEngine engine(config, [](const predict::Warning& w) {
//     page_the_operator(w);
//   });
//   while (auto record = reader.next()) engine.consume(*record);
#pragma once

#include <deque>
#include <functional>
#include <memory>
#include <optional>

#include "meta/meta_learner.hpp"
#include "predict/predictor.hpp"
#include "predict/reviser.hpp"
#include "preprocess/categorizer.hpp"
#include "preprocess/spatial_filter.hpp"
#include "preprocess/temporal_filter.hpp"

namespace dml::online {

struct OnlineEngineConfig {
  /// Wp: prediction window == rule-generation window.
  DurationSec prediction_window = 300;
  /// Filtering threshold for inline preprocessing of raw records.
  DurationSec filter_threshold = 300;
  /// Retraining cadence (event time).
  DurationSec retrain_interval = 4 * kSecondsPerWeek;
  /// Sliding training-set length; history beyond it is discarded
  /// (bounded memory).
  DurationSec training_span = 26 * kSecondsPerWeek;
  /// Events required before the first training (avoid learning from a
  /// nearly empty history).
  std::size_t min_training_events = 200;
  bool use_reviser = true;
  predict::ReviserConfig reviser;
  meta::MetaLearnerConfig learner;
  predict::PredictorOptions predictor;
  /// PD self-check cadence; 0 disables ticks.
  DurationSec clock_tick = 300;
};

class OnlineEngine {
 public:
  using WarningCallback = std::function<void(const predict::Warning&)>;

  OnlineEngine(OnlineEngineConfig config, WarningCallback on_warning);

  /// Feeds one raw record (preprocessed inline: categorize + temporal +
  /// spatial compression).  Records must arrive in time order.
  void consume(const bgl::RasRecord& record);

  /// Feeds one already-unique categorized event.
  void consume(const bgl::Event& event);

  /// Forces a retraining at the current event time.
  void retrain_now();

  /// Rules currently in force (empty before the first training).
  const meta::KnowledgeRepository& rules() const { return *repository_; }

  struct SessionStats {
    std::uint64_t records_consumed = 0;
    std::uint64_t events_after_filtering = 0;
    std::uint64_t failures_seen = 0;
    std::uint64_t warnings_issued = 0;
    std::uint64_t retrainings = 0;
    std::size_t history_size = 0;
  };
  SessionStats stats() const;

  TimeSec now() const { return now_; }

 private:
  void advance_clock(TimeSec t);
  void observe(const bgl::Event& event);
  void retrain(TimeSec now);

  OnlineEngineConfig config_;
  WarningCallback on_warning_;

  preprocess::Categorizer categorizer_;
  preprocess::TemporalFilter temporal_;
  preprocess::SpatialFilter spatial_;

  std::deque<bgl::Event> history_;
  std::unique_ptr<meta::KnowledgeRepository> repository_;
  std::unique_ptr<predict::Predictor> predictor_;

  TimeSec now_ = 0;
  std::optional<TimeSec> first_event_time_;
  std::optional<TimeSec> next_retrain_;
  std::optional<TimeSec> next_tick_;
  SessionStats session_;
};

}  // namespace dml::online
