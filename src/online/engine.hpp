// OnlineEngine: the deployable form of the framework.  Feed it raw RAS
// records (or pre-categorized events) as they arrive; it preprocesses
// them inline (preprocess::StreamingPipeline), retrains the meta-learner
// on schedule (RetrainScheduler — synchronously, or on the shared pool
// with an RCU snapshot swap so consume() never blocks on training), and
// invokes a callback for every failure warning — the runtime
// configuration of Figure 1 as a single embeddable object.
//
//   online::OnlineEngine engine(config, [](const predict::Warning& w) {
//     page_the_operator(w);
//   });
//   while (auto record = reader.next()) engine.consume(*record);
//
// DynamicDriver::run() replays a whole log through this same object, so
// the train/predict/retrain loop exists exactly once.
#pragma once

#include <functional>
#include <span>
#include <vector>

#include "online/retraining.hpp"
#include "online/serving.hpp"
#include "preprocess/streaming_pipeline.hpp"
#include "storage/event_repository.hpp"

namespace dml::online {

/// One graceful-degradation incident, in a form reports can print: the
/// serving side kept going, this records what it gave up.
struct DegradationEvent {
  enum class Kind {
    /// A retraining boundary was abandoned after every build attempt
    /// failed; the last good snapshot stayed in force.
    kRetrainFailure,
    /// A shard worker threw; the shard drained without serving from
    /// then on, its watermark still advancing so the merged stream
    /// never stalled.
    kShardQuarantined,
    /// Summary entry: input records dropped/skipped as corrupt or by
    /// fault injection (counted, not individually logged).
    kRecordsSkipped,
  };

  Kind kind = Kind::kRetrainFailure;
  /// Event time of the incident (boundary, quarantine watermark, or end
  /// of stream for summaries).
  TimeSec at = 0;
  /// Build attempts spent (kRetrainFailure) or records lost
  /// (kRecordsSkipped).
  std::size_t count = 0;
  std::string detail;
};

std::string_view to_string(DegradationEvent::Kind kind);

struct OnlineEngineConfig {
  /// Wp: prediction window == rule-generation window.
  DurationSec prediction_window = 300;
  /// Filtering threshold for inline preprocessing of raw records.
  DurationSec filter_threshold = 300;
  /// Retraining cadence (event time).
  DurationSec retrain_interval = 4 * kSecondsPerWeek;
  /// Event time before the first training; 0 = retrain_interval.
  DurationSec initial_training_delay = 0;
  /// Sliding training-set length (kSlidingWindow); history beyond it is
  /// discarded (bounded memory).
  DurationSec training_span = 26 * kSecondsPerWeek;
  /// Events required before the first training (avoid learning from a
  /// nearly empty history).
  std::size_t min_training_events = 200;
  /// Training-set regime at each boundary (Figure 9).
  TrainingMode mode = TrainingMode::kSlidingWindow;
  bool use_reviser = true;
  predict::ReviserConfig reviser;
  meta::MetaLearnerConfig learner;
  predict::PredictorOptions predictor;
  /// PD self-check cadence; 0 disables ticks.
  DurationSec clock_tick = 300;
  /// Adaptive prediction-window selection (§7 future work).
  bool adaptive_window = false;
  std::vector<DurationSec> window_candidates = {60, 300, 900, 1800};
  double validation_fraction = 0.25;
  /// Build rule sets on ThreadPool::shared(): consume() keeps serving
  /// the old snapshot while the new one is mined, and the swap is one
  /// atomic publish.  Off = deterministic inline training at the
  /// boundary (replay / test mode).
  bool async_retrain = false;
  /// Event-time lag from boundary to adoption in async mode; see
  /// RetrainPolicy::adoption_lag.
  DurationSec adoption_lag = 0;
  /// Tick on the absolute grid first-adoption + k * clock_tick instead
  /// of re-anchoring per adoption; see ServingCore::TickAnchor.
  bool absolute_ticks = false;
  /// Time the serving path (SessionStats::serving_seconds).  Off by
  /// default: the per-event clock reads are cheap but not free.
  bool profile = false;
};

class OnlineEngine {
 public:
  using WarningCallback = std::function<void(const predict::Warning&)>;

  OnlineEngine(OnlineEngineConfig config, WarningCallback on_warning);

  /// Joins any in-flight retraining.
  ~OnlineEngine();

  /// Feeds one raw record (preprocessed inline: categorize + temporal +
  /// spatial compression).  Records must arrive in time order.
  void consume(const bgl::RasRecord& record);

  /// Feeds one already-unique categorized event.
  void consume(const bgl::Event& event);

  /// Feeds a time-ordered run of categorized events.  Bit-identical to
  /// consuming them one by one — retraining boundaries, adoptions and
  /// ticks still fire between any two events of the batch, and a
  /// serving failpoint thrown mid-batch leaves exactly the prefix
  /// consumed (DESIGN.md §13).  Replay loops use this to cross the
  /// engine boundary once per buffer instead of once per event.
  void consume_batch(std::span<const bgl::Event> events);

  /// Restart path: brings a freshly constructed engine to the exact
  /// state a live engine would hold just before serving event time
  /// `serve_from`, reading history straight from the repository.
  ///
  /// Events in [repo.first_time(), serve_from) are replayed through the
  /// retraining schedule only — every boundary fires and every snapshot
  /// is adopted just as live, but per-event serving is skipped, which is
  /// sound because adoption/refresh rebuilds the predictor from scratch.
  /// The serving tail since the last rebuild is then re-observed from
  /// the scheduler's history (its warnings discarded), so predictor
  /// window state, deduplication and tick grid all match a live engine.
  /// Warnings emitted from serve_from on are byte-identical to an
  /// uninterrupted replay.
  ///
  /// Must be called on a fresh engine (nothing consumed) with
  /// synchronous retraining; categorized-event repositories only.
  void cold_start(const storage::EventRepository& repo, TimeSec serve_from);

  /// Advances the engine clock without an event: fires any due
  /// retraining boundary, adopts finished builds, and runs ticks due
  /// strictly before t.  The driver uses this to pin boundaries at its
  /// interval edges even across event gaps.
  void advance_to(TimeSec t);

  /// Forces a retraining at the current event time: joins the in-flight
  /// build if one is running (async), otherwise schedules and completes
  /// one synchronously ("schedule + join").
  void retrain_now();

  /// End of stream: joins and adopts any in-flight build.
  void finish();

  /// Rules currently in force (empty before the first training).
  const meta::KnowledgeRepository& rules() const {
    return *serving_.snapshot();
  }
  /// Pins the snapshot in force — stays valid (and immutable) across
  /// later retrainings.
  meta::RepositorySnapshot rules_snapshot() const {
    return serving_.snapshot();
  }

  /// Every adopted retraining, in adoption order (churn, timings,
  /// window — the per-interval bookkeeping the driver reports).
  const std::vector<SnapshotBuild>& retrain_log() const {
    return retrain_log_;
  }

  /// Prediction window in force (moves only in adaptive mode).
  DurationSec current_window() const { return serving_.window(); }

  struct SessionStats {
    std::uint64_t records_consumed = 0;
    std::uint64_t events_after_filtering = 0;
    std::uint64_t failures_seen = 0;
    std::uint64_t warnings_issued = 0;
    std::uint64_t retrainings = 0;
    std::size_t history_size = 0;
    /// Input units dropped or skipped instead of served (corrupt
    /// records, drop failpoints) — the counted-divergence budget of a
    /// degraded run.
    std::uint64_t records_rejected = 0;
    /// Retraining boundaries abandoned after every build attempt threw.
    std::uint64_t retrain_failures = 0;
    /// Shard workers stopped by an exception (ShardedEngine only).
    std::uint64_t shards_quarantined = 0;
    /// Wall seconds spent building adopted rule sets (training +
    /// revision, summed over the retrain log; measured on the build
    /// thread, so async builds overlap serving).
    double retrain_build_seconds = 0.0;
    /// Per-learner decomposition of retrain_build_seconds' training part
    /// (summed over the retrain log) — the per-learner rows of the
    /// --profile retrain-build report.
    meta::TrainTimes retrain_train_times;
    /// Revision part of retrain_build_seconds.
    double retrain_revise_seconds = 0.0;
    /// Wall seconds inside the serving path (ticks + per-event
    /// observation).  Only measured when OnlineEngineConfig::profile is
    /// set; 0 otherwise.
    double serving_seconds = 0.0;
    /// Events replayed without serving by cold_start() before the
    /// session began (not counted in records_consumed).
    std::uint64_t cold_start_events = 0;
    /// Log-I/O accounting of the backing EventRepository, filled by
    /// owners that replay from one (DynamicDriver::run, `dmlfp run
    /// --repo`); all zero for in-memory replays.  The map/read split is
    /// the "mmap vs read time" row of the --profile table.
    std::uint64_t log_bytes_read = 0;
    std::uint64_t log_segments_opened = 0;
    double log_map_seconds = 0.0;
    double log_read_seconds = 0.0;
  };
  SessionStats stats() const;

  /// Degradation incidents so far (abandoned retrain boundaries).
  std::vector<DegradationEvent> degradation_log() const;

  TimeSec now() const { return now_; }

 private:
  void step(TimeSec t);
  void observe(const bgl::Event& event);
  void adopt(SnapshotBuild build);
  std::vector<bgl::Event> warm_tail(TimeSec at, DurationSec window) const;
  void emit();

  OnlineEngineConfig config_;
  WarningCallback on_warning_;

  preprocess::StreamingPipeline pipeline_;
  RetrainScheduler scheduler_;
  ServingCore serving_;
  std::vector<SnapshotBuild> retrain_log_;
  std::vector<predict::Warning> scratch_;

  TimeSec now_ = 0;
  SessionStats session_;
};

}  // namespace dml::online
