#include "storage/manifest.hpp"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <charconv>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "storage/format.hpp"
#include "storage/paths.hpp"

namespace dml::storage {
namespace {

void fsync_path(const std::string& path, bool directory) {
  const int fd =
      ::open(path.c_str(), (directory ? O_DIRECTORY : 0) | O_RDONLY);
  if (fd < 0) {
    throw std::runtime_error("storage: cannot open " + path +
                             " for fsync: " + std::strerror(errno));
  }
  const int rc = ::fsync(fd);
  const int err = errno;
  ::close(fd);
  if (rc != 0) {
    throw std::runtime_error("storage: fsync " + path + " failed: " +
                             std::strerror(err));
  }
}

}  // namespace

void write_manifest(const std::string& dir, const Manifest& manifest) {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) {
    throw std::runtime_error("storage: cannot create " + dir + ": " +
                             ec.message());
  }
  const std::string path = join_path(dir, kManifestName);
  if (std::filesystem::exists(path)) {
    throw std::runtime_error("storage: repository already exists at " + dir);
  }
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::trunc);
    out << kManifestMagic << '\n'
        << "machine=" << manifest.machine << '\n'
        << "segment_bytes=" << manifest.segment_bytes << '\n'
        << "threshold=" << manifest.threshold << '\n';
    out.flush();
    if (!out) {
      throw std::runtime_error("storage: cannot write " + tmp);
    }
  }
  fsync_path(tmp, false);
  std::filesystem::rename(tmp, path, ec);
  if (ec) {
    throw std::runtime_error("storage: cannot rename " + tmp + ": " +
                             ec.message());
  }
  fsync_path(dir, true);
}

std::optional<Manifest> read_manifest(const std::string& dir,
                                      std::string* error) {
  const auto reject = [&](std::string what) -> std::optional<Manifest> {
    if (error != nullptr) *error = std::move(what);
    return std::nullopt;
  };
  std::ifstream in(join_path(dir, kManifestName));
  if (!in) return reject("missing " + std::string(kManifestName));
  std::string line;
  if (!std::getline(in, line) || line != kManifestMagic) {
    return reject("bad manifest magic line");
  }
  Manifest manifest;
  bool saw_machine = false;
  while (std::getline(in, line)) {
    if (line.empty() || line.front() == '#') continue;
    const auto eq = line.find('=');
    if (eq == std::string::npos) return reject("bad manifest line: " + line);
    const std::string key = line.substr(0, eq);
    const std::string value = line.substr(eq + 1);
    const auto parse_number = [&](auto* out) {
      const auto [ptr, ec2] = std::from_chars(
          value.data(), value.data() + value.size(), *out);
      return ec2 == std::errc{} && ptr == value.data() + value.size();
    };
    if (key == "machine") {
      manifest.machine = value;
      saw_machine = true;
    } else if (key == "segment_bytes") {
      if (!parse_number(&manifest.segment_bytes)) {
        return reject("bad segment_bytes: " + value);
      }
    } else if (key == "threshold") {
      if (!parse_number(&manifest.threshold)) {
        return reject("bad threshold: " + value);
      }
    }
    // Unknown keys are ignored for forward compatibility.
  }
  if (!saw_machine) return reject("manifest missing machine=");
  // The same floor LogWriter enforces at create time: a repository the
  // writer could produce must always be reopenable.
  if (manifest.segment_bytes < kSegmentHeaderSize + kEventRecordSize) {
    return reject("segment_bytes implausibly small");
  }
  return manifest;
}

}  // namespace dml::storage
