#include "storage/log_writer.hpp"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <charconv>
#include <cstring>
#include <filesystem>
#include <stdexcept>

#include "common/check.hpp"
#include "common/failpoint.hpp"
#include "storage/manifest.hpp"
#include "storage/paths.hpp"
#include "storage/segment.hpp"

namespace dml::storage {
namespace {

namespace fs = std::filesystem;

/// Parses "seg-NNNNNN.log" → NNNNNN; nullopt for anything else.
std::optional<std::uint64_t> parse_segment_name(const std::string& name) {
  // Name layout: "seg-" + >=6 digits + ".log".
  if (name.size() < 4 + 6 + 4) return std::nullopt;
  if (name.compare(0, 4, "seg-") != 0) return std::nullopt;
  if (name.compare(name.size() - 4, 4, ".log") != 0) return std::nullopt;
  const char* first = name.data() + 4;
  const char* last = name.data() + name.size() - 4;
  std::uint64_t number = 0;
  const auto [ptr, ec] = std::from_chars(first, last, number);
  if (ec != std::errc{} || ptr != last) return std::nullopt;
  return number;
}

int open_for_append(const std::string& path, bool create) {
  int flags = O_WRONLY | O_APPEND | O_CLOEXEC;
  if (create) flags |= O_CREAT | O_TRUNC;
  const int fd = ::open(path.c_str(), flags, 0644);
  if (fd < 0) {
    throw std::runtime_error("storage: cannot open " + path + ": " +
                             std::strerror(errno));
  }
  return fd;
}

}  // namespace

LogWriter::LogWriter(const std::string& dir, const std::string& machine,
                     const LogWriterOptions& options)
    : dir_(dir), machine_(machine), options_(options) {
  DML_CHECK(options_.segment_bytes >=
            kSegmentHeaderSize + kEventRecordSize);
  Manifest manifest;
  manifest.machine = machine_;
  manifest.segment_bytes = options_.segment_bytes;
  manifest.threshold = options_.threshold;
  write_manifest(dir_, manifest);
  open_active(/*first_ordinal=*/0);
}

LogWriter::LogWriter(const std::string& dir) : dir_(dir) {
  std::string error;
  const auto manifest = read_manifest(dir_, &error);
  if (!manifest) {
    throw std::runtime_error("storage: not a repository (" + dir_ +
                             "): " + error);
  }
  machine_ = manifest->machine;
  options_.segment_bytes = manifest->segment_bytes;
  options_.threshold = manifest->threshold;

  // Pass 1 over the directory: sweep temp files, collect sealed numbers.
  std::vector<std::uint64_t> sealed;
  for (const auto& entry : fs::directory_iterator(dir_)) {
    const std::string name = entry.path().filename().string();
    if (name.size() > 4 && name.compare(name.size() - 4, 4, ".tmp") == 0) {
      fs::remove(entry.path());
      ++recovery_.temp_files_removed;
      continue;
    }
    if (const auto number = parse_segment_name(name)) {
      sealed.push_back(*number);
    }
  }
  std::sort(sealed.begin(), sealed.end());
  for (std::size_t i = 0; i < sealed.size(); ++i) {
    if (sealed[i] != i) {
      throw std::runtime_error("storage: sealed segments not contiguous in " +
                               dir_ + " (missing seg " + std::to_string(i) +
                               ")");
    }
  }
  sealed_segments_ = sealed.size();

  // Pass 2: validate every sealed segment, repairing sidecar indexes.
  // Sealed files were fsynced before their rename, so a torn sealed
  // segment means foul play — but the scan is the source of truth, so
  // recover what is intact rather than refuse the whole repository.
  std::uint64_t running_total = 0;
  for (std::uint64_t number = 0; number < sealed_segments_; ++number) {
    const std::string path = join_path(dir_, segment_name(number));
    SegmentScan scan;
    {
      const MappedFile map = MappedFile::open(path);
      scan = scan_segment(map.data(), map.size());
    }
    if (!scan.header_ok) {
      throw std::runtime_error("storage: sealed segment " + path +
                               " has a corrupt header");
    }
    if (scan.header.first_ordinal != running_total) {
      throw std::runtime_error("storage: " + path + " first ordinal " +
                               std::to_string(scan.header.first_ordinal) +
                               " != expected " +
                               std::to_string(running_total));
    }
    if (scan.torn_bytes > 0) {
      if (::truncate(path.c_str(), static_cast<off_t>(scan.valid_bytes)) !=
          0) {
        throw std::runtime_error("storage: cannot truncate " + path + ": " +
                                 std::strerror(errno));
      }
      recovery_.truncated_bytes += scan.torn_bytes;
    }
    SegmentIndex stored;
    bool index_ok = false;
    const std::string idx_path = join_path(dir_, index_name(number));
    if (fs::exists(idx_path)) {
      const MappedFile map = MappedFile::open(idx_path);
      index_ok = decode_index(map.data(), map.size(), &stored) &&
                 stored == scan.index;
    }
    if (!index_ok) {
      write_index(number, scan.index);
      ++recovery_.indexes_rebuilt;
    }
    running_total += scan.valid_records;
    if (scan.valid_records > 0) last_time_ = scan.index.max_time;
  }

  // Pass 3: the active tail — truncate the torn suffix, or recreate the
  // file outright if even the header never made it to disk.
  const std::string active_path = join_path(dir_, kActiveName);
  if (!fs::exists(active_path)) {
    open_active(running_total);
    total_records_ = running_total;
    return;
  }
  SegmentScan scan;
  std::uint64_t active_size = 0;
  {
    const MappedFile map = MappedFile::open(active_path);
    active_size = map.size();
    scan = scan_segment(map.data(), map.size());
  }
  if (!scan.header_ok) {
    recovery_.truncated_bytes += active_size;
    open_active(running_total);
    total_records_ = running_total;
    return;
  }
  if (scan.header.first_ordinal != running_total) {
    throw std::runtime_error(
        "storage: active.log first ordinal " +
        std::to_string(scan.header.first_ordinal) + " != expected " +
        std::to_string(running_total) + " in " + dir_);
  }
  if (scan.torn_bytes > 0) {
    if (::truncate(active_path.c_str(),
                   static_cast<off_t>(scan.valid_bytes)) != 0) {
      throw std::runtime_error("storage: cannot truncate " + active_path +
                               ": " + std::strerror(errno));
    }
    recovery_.truncated_bytes += scan.torn_bytes;
  }
  active_index_ = scan.index;
  active_bytes_ = scan.valid_bytes;
  total_records_ = running_total + scan.valid_records;
  if (scan.valid_records > 0) last_time_ = scan.index.max_time;
  active_fd_ = open_for_append(active_path, /*create=*/false);
}

LogWriter::~LogWriter() {
  // Deliberately crash-like: no flush, no seal (see header).
  if (active_fd_ >= 0) ::close(active_fd_);
}

common::FailAction LogWriter::hit_failpoint(std::string_view name) {
  try {
    return common::failpoint(name);
  } catch (...) {
    failed_ = true;
    throw;
  }
}

void LogWriter::append(const bgl::Event& event) {
  if (failed_) fail("writer already failed; reopen the repository");
  if (closed_) fail("writer is closed");
  DML_CHECK(event.time >= last_time_);

  const common::FailAction action =
      hit_failpoint(common::failpoints::kStorageAppend);

  if (active_bytes_ + kEventRecordSize > options_.segment_bytes &&
      active_index_.count > 0) {
    roll();
  }

  unsigned char record[kEventRecordSize];
  encode_event(event, record);
  if (action == common::FailAction::kCorrupt) {
    // Simulated kill mid-write: half a record lands on disk, then the
    // "process" dies.  Recovery must truncate exactly these bytes.
    write_all(record, kEventRecordSize / 2);
    failed_ = true;
    throw common::FailpointError(
        std::string(common::failpoints::kStorageAppend));
  }
  write_all(record, kEventRecordSize);

  active_bytes_ += kEventRecordSize;
  ++total_records_;
  ++appended_;
  last_time_ = event.time;
  active_index_.note(event);

  if (options_.sync_every_records > 0 &&
      ++unsynced_records_ >= options_.sync_every_records) {
    sync();
  }
}

void LogWriter::roll() {
  const common::FailAction action =
      hit_failpoint(common::failpoints::kStorageRoll);

  // Seal: make the data durable, then move it into the numbered series.
  sync_fd(active_fd_, kActiveName);
  ::close(active_fd_);
  active_fd_ = -1;

  const std::string from = join_path(dir_, kActiveName);
  const std::string to = join_path(dir_, segment_name(sealed_segments_));
  if (::rename(from.c_str(), to.c_str()) != 0) {
    fail("cannot seal " + to + ": " + std::strerror(errno));
  }
  sync_dir();

  if (action == common::FailAction::kCorrupt) {
    // Simulated kill between sealing the segment and writing its index;
    // recovery must rebuild the index by scanning the segment.
    failed_ = true;
    throw common::FailpointError(
        std::string(common::failpoints::kStorageRoll));
  }

  write_index(sealed_segments_, active_index_);
  ++sealed_segments_;
  open_active(total_records_);
}

void LogWriter::sync() {
  if (failed_) fail("writer already failed; reopen the repository");
  hit_failpoint(common::failpoints::kStorageSync);
  sync_fd(active_fd_, kActiveName);
  unsynced_records_ = 0;
}

void LogWriter::close() {
  if (closed_) return;
  sync();

  // Post-write health check: read the active tail back and make every
  // record justify its CRC.  An unsynced index or torn segment must not
  // be reported as a successful ingest.
  const std::string active_path = join_path(dir_, kActiveName);
  SegmentScan scan;
  {
    const MappedFile map = MappedFile::open(active_path);
    scan = scan_segment(map.data(), map.size());
  }
  if (!scan.header_ok || scan.torn_bytes > 0 ||
      scan.valid_records != active_index_.count) {
    fail("read-back validation of " + active_path + " failed (" +
         std::to_string(scan.valid_records) + "/" +
         std::to_string(active_index_.count) + " records intact, " +
         std::to_string(scan.torn_bytes) + " torn bytes)");
  }

  ::close(active_fd_);
  active_fd_ = -1;
  closed_ = true;
}

void LogWriter::open_active(std::uint64_t first_ordinal) {
  const std::string path = join_path(dir_, kActiveName);
  active_fd_ = open_for_append(path, /*create=*/true);
  unsigned char header[kSegmentHeaderSize];
  SegmentHeader h;
  h.first_ordinal = first_ordinal;
  encode_segment_header(h, header);
  write_all(header, kSegmentHeaderSize);
  active_bytes_ = kSegmentHeaderSize;
  active_index_ = SegmentIndex{};
  active_index_.first_ordinal = first_ordinal;
}

void LogWriter::write_index(std::uint64_t segment_number,
                            const SegmentIndex& index) {
  const std::vector<unsigned char> bytes = encode_index(index);
  const std::string path = join_path(dir_, index_name(segment_number));
  const std::string tmp = path + ".tmp";
  const int fd =
      ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  if (fd < 0) {
    fail("cannot create " + tmp + ": " + std::strerror(errno));
  }
  std::size_t done = 0;
  while (done < bytes.size()) {
    const ssize_t n = ::write(fd, bytes.data() + done, bytes.size() - done);
    if (n < 0) {
      if (errno == EINTR) continue;
      const int err = errno;
      ::close(fd);
      fail("cannot write " + tmp + ": " + std::strerror(err));
    }
    done += static_cast<std::size_t>(n);
  }
  sync_fd(fd, tmp);
  ::close(fd);
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    fail("cannot rename " + tmp + ": " + std::strerror(errno));
  }
  sync_dir();
}

void LogWriter::write_all(const unsigned char* data, std::size_t size) {
  std::size_t done = 0;
  while (done < size) {
    const ssize_t n = ::write(active_fd_, data + done, size - done);
    if (n < 0) {
      if (errno == EINTR) continue;
      fail("write to active.log failed: " + std::string(std::strerror(errno)));
    }
    done += static_cast<std::size_t>(n);
  }
}

void LogWriter::sync_fd(int fd, const std::string& what) {
  if (::fsync(fd) != 0) {
    fail("fsync " + what + " failed: " + std::strerror(errno));
  }
}

void LogWriter::sync_dir() {
  const int fd = ::open(dir_.c_str(), O_DIRECTORY | O_RDONLY | O_CLOEXEC);
  if (fd < 0) {
    fail("cannot open directory " + dir_ + ": " + std::strerror(errno));
  }
  const int rc = ::fsync(fd);
  const int err = errno;
  ::close(fd);
  if (rc != 0) {
    fail("fsync directory " + dir_ + " failed: " + std::strerror(err));
  }
}

void LogWriter::fail(const std::string& what) {
  failed_ = true;
  throw std::runtime_error("storage: " + what);
}

void CanonicalAppender::append(const bgl::Event& event) {
  if (!pending_.empty() && event.time != pending_.back().time) flush();
  pending_.push_back(event);
}

void CanonicalAppender::flush() {
  if (pending_.empty()) return;
  std::stable_sort(pending_.begin(), pending_.end(), bgl::EventTimeOrder{});
  for (const bgl::Event& event : pending_) writer_.append(event);
  pending_.clear();
}

}  // namespace dml::storage
