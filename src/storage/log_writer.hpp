// Crash-safe append side of the segmented event log.
//
// Durability discipline (DESIGN.md §11):
//  - appends go to `active.log` with plain sequential writes; a record
//    is "fully written" once all 24 bytes hit the file;
//  - a segment roll fsyncs the active file, renames it into the sealed
//    `seg-NNNNNN.log` series, fsyncs the directory, then writes the
//    sidecar index through temp-file + fsync + rename.  A sealed
//    segment is therefore durable before it becomes visible under its
//    sealed name, and a missing/torn index is always rebuildable from
//    its segment (a crash between the two renames self-heals on open);
//  - open() recovers: stray temp files are removed, sealed segments
//    missing an index get one rebuilt, and a torn active tail (partial
//    or corrupt trailing record) is truncated to the last intact
//    record — exactly the BigWorld message_logger recovery contract.
//
// The `storage.append` / `storage.roll` / `storage.sync` failpoints are
// compiled into the corresponding steps; the chaos tier kills writers
// through them and asserts this recovery contract over 50 seeds.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "bgl/record.hpp"
#include "common/failpoint.hpp"
#include "storage/format.hpp"

namespace dml::storage {

struct LogWriterOptions {
  /// Target byte size of one segment, header included.  Appends roll to
  /// a new segment when the next record would not fit.
  std::size_t segment_bytes = 4u << 20;
  /// fsync the active segment every N appended records; 0 = only on
  /// roll and close (crash may then lose the unsynced active tail, but
  /// never a sealed segment).
  std::size_t sync_every_records = 0;
  /// Preprocess threshold recorded in the manifest (create only).
  std::int64_t threshold = 300;
};

/// What open() had to repair.
struct RecoveryInfo {
  /// Torn bytes truncated off the active segment's tail.
  std::uint64_t truncated_bytes = 0;
  /// Sealed segments whose sidecar index was missing/corrupt and was
  /// rebuilt by scanning the segment.
  std::size_t indexes_rebuilt = 0;
  /// Leftover temp files removed.
  std::size_t temp_files_removed = 0;
};

class LogWriter {
 public:
  /// Creates a fresh repository in `dir` (directory is created if
  /// absent; must not already contain a repository).
  LogWriter(const std::string& dir, const std::string& machine,
            const LogWriterOptions& options);

  /// Opens an existing repository for append, recovering as described
  /// above.  Manifest options (segment size) are taken from the
  /// repository, not re-specified.
  explicit LogWriter(const std::string& dir);

  /// Destruction without close() is deliberately crash-like: nothing is
  /// flushed or sealed beyond what append()/sync() already wrote, so
  /// tests can abandon a writer mid-stream to simulate a kill.
  ~LogWriter();

  LogWriter(const LogWriter&) = delete;
  LogWriter& operator=(const LogWriter&) = delete;

  /// Appends one event.  Events must arrive in non-decreasing canonical
  /// order (bgl::EventTimeOrder; enforced on the time axis).  Throws on
  /// I/O failure or a triggered storage.append/storage.roll failpoint;
  /// after a throw the writer is unusable (sticky failed state) — the
  /// crash-recovery path is to reopen the directory.
  void append(const bgl::Event& event);

  /// fsyncs the active segment (storage.sync failpoint inside).
  void sync();

  /// sync() + read-back validation of the active tail: re-scans the
  /// active segment and throws if any record fails its CRC — the
  /// post-write health check `dmlfp ingest` gates success on.  The
  /// active segment stays active (appendable by a later open).
  void close();

  bool closed() const { return closed_; }

  /// Events appended over the repository's lifetime (all segments).
  std::uint64_t total_records() const { return total_records_; }
  /// Events this writer appended since construction.
  std::uint64_t appended() const { return appended_; }
  std::uint64_t sealed_segments() const { return sealed_segments_; }
  TimeSec last_time() const { return last_time_; }
  const std::string& machine() const { return machine_; }
  const std::string& dir() const { return dir_; }
  const LogWriterOptions& options() const { return options_; }

  /// What the opening constructor repaired (empty for a fresh create).
  const RecoveryInfo& recovery() const { return recovery_; }

 private:
  /// Evaluates a failpoint, making a kThrow trigger stick as failure.
  common::FailAction hit_failpoint(std::string_view name);
  /// Creates a fresh active.log whose records start at `first_ordinal`.
  void open_active(std::uint64_t first_ordinal);
  void roll();
  void write_index(std::uint64_t segment_number, const SegmentIndex& index);
  void write_all(const unsigned char* data, std::size_t size);
  void sync_fd(int fd, const std::string& what);
  void sync_dir();
  [[noreturn]] void fail(const std::string& what);

  std::string dir_;
  std::string machine_;
  LogWriterOptions options_;
  RecoveryInfo recovery_;

  int active_fd_ = -1;
  std::uint64_t sealed_segments_ = 0;
  std::uint64_t active_bytes_ = 0;
  std::uint64_t total_records_ = 0;
  std::uint64_t appended_ = 0;
  std::uint64_t unsynced_records_ = 0;
  TimeSec last_time_ = 0;
  SegmentIndex active_index_;
  bool failed_ = false;
  bool closed_ = false;
};

/// Buffers same-timestamp events and flushes them to the writer in
/// canonical order (bgl::EventTimeOrder), so an ingest stream that is
/// only time-ordered lands on disk in exactly the order an in-memory
/// EventStore would present it — the invariant behind the byte-identical
/// warning-stream guarantee of `dmlfp run --repo`.
class CanonicalAppender {
 public:
  explicit CanonicalAppender(LogWriter& writer) : writer_(writer) {}

  void append(const bgl::Event& event);
  /// Flushes the pending timestamp group.  Call before close().
  void flush();

 private:
  LogWriter& writer_;
  std::vector<bgl::Event> pending_;
};

}  // namespace dml::storage
