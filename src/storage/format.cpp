#include "storage/format.hpp"

#include <algorithm>
#include <cstring>

#include "common/check.hpp"
#include "common/crc32.hpp"

namespace dml::storage {
namespace {

void put_u16(unsigned char* out, std::uint16_t v) {
  out[0] = static_cast<unsigned char>(v);
  out[1] = static_cast<unsigned char>(v >> 8);
}

void put_u32(unsigned char* out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out[i] = static_cast<unsigned char>(v >> (8 * i));
  }
}

void put_u64(unsigned char* out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out[i] = static_cast<unsigned char>(v >> (8 * i));
  }
}

std::uint16_t get_u16(const unsigned char* in) {
  return static_cast<std::uint16_t>(in[0] | (in[1] << 8));
}

std::uint32_t get_u32(const unsigned char* in) {
  std::uint32_t v = 0;
  for (int i = 3; i >= 0; --i) v = (v << 8) | in[i];
  return v;
}

std::uint64_t get_u64(const unsigned char* in) {
  std::uint64_t v = 0;
  for (int i = 7; i >= 0; --i) v = (v << 8) | in[i];
  return v;
}

}  // namespace

void encode_event(const bgl::Event& event,
                  unsigned char out[kEventRecordSize]) {
  put_u64(out, static_cast<std::uint64_t>(event.time));
  put_u32(out + 8, event.location.packed());
  put_u32(out + 12, event.job_id);
  put_u16(out + 16, event.category);
  out[18] = event.fatal ? 1 : 0;
  out[19] = 0;
  put_u32(out + 20, common::crc32(out, 20));
}

bool decode_event(const unsigned char* in, bgl::Event* out) {
  if (common::crc32(in, 20) != get_u32(in + 20)) return false;
  out->time = static_cast<TimeSec>(get_u64(in));
  out->location = bgl::Location::from_packed(get_u32(in + 8));
  out->job_id = get_u32(in + 12);
  out->category = get_u16(in + 16);
  out->fatal = in[18] != 0;
  return true;
}

TimeSec decode_event_time(const unsigned char* in) {
  return static_cast<TimeSec>(get_u64(in));
}

void encode_segment_header(const SegmentHeader& header,
                           unsigned char out[kSegmentHeaderSize]) {
  std::memcpy(out, kSegmentMagic, 8);
  put_u32(out + 8, header.version);
  put_u32(out + 12, static_cast<std::uint32_t>(kEventRecordSize));
  put_u64(out + 16, header.first_ordinal);
  put_u32(out + 24, 0);  // reserved
  put_u32(out + 28, common::crc32(out, 28));
}

bool decode_segment_header(const unsigned char* in, SegmentHeader* out) {
  if (std::memcmp(in, kSegmentMagic, 8) != 0) return false;
  if (common::crc32(in, 28) != get_u32(in + 28)) return false;
  out->version = get_u32(in + 8);
  if (out->version != kFormatVersion) return false;
  if (get_u32(in + 12) != kEventRecordSize) return false;
  out->first_ordinal = get_u64(in + 16);
  return true;
}

void SegmentIndex::note(const bgl::Event& event) {
  if (count == 0) min_time = event.time;
  DML_DCHECK(event.time >= max_time || count == 0);
  max_time = event.time;
  ++count;
  if (event.fatal) ++fatal_count;

  const std::uint32_t midplane = event.location.enclosing_midplane().packed();
  auto it = std::lower_bound(
      midplanes.begin(), midplanes.end(), midplane,
      [](const MidplaneRecord& r, std::uint32_t m) { return r.midplane < m; });
  if (it == midplanes.end() || it->midplane != midplane) {
    it = midplanes.insert(it, {midplane, 0, event.time, event.time});
  }
  ++it->count;
  it->last_time = event.time;
}

namespace {

// Index layout: magic(8) version(4) count(8) first_ordinal(8) min(8)
// max(8) fatal(8) midplane_count(4), then 28 bytes per midplane record,
// then crc32(4) over everything before it.
constexpr std::size_t kIndexFixedSize = 8 + 4 + 8 + 8 + 8 + 8 + 8 + 4;
constexpr std::size_t kMidplaneRecordSize = 4 + 8 + 8 + 8;

}  // namespace

std::vector<unsigned char> encode_index(const SegmentIndex& index) {
  std::vector<unsigned char> out(
      kIndexFixedSize + index.midplanes.size() * kMidplaneRecordSize + 4);
  unsigned char* p = out.data();
  std::memcpy(p, kIndexMagic, 8);
  put_u32(p + 8, kFormatVersion);
  put_u64(p + 12, index.count);
  put_u64(p + 20, index.first_ordinal);
  put_u64(p + 28, static_cast<std::uint64_t>(index.min_time));
  put_u64(p + 36, static_cast<std::uint64_t>(index.max_time));
  put_u64(p + 44, index.fatal_count);
  put_u32(p + 52, static_cast<std::uint32_t>(index.midplanes.size()));
  p += kIndexFixedSize;
  for (const auto& record : index.midplanes) {
    put_u32(p, record.midplane);
    put_u64(p + 4, record.count);
    put_u64(p + 12, static_cast<std::uint64_t>(record.first_time));
    put_u64(p + 20, static_cast<std::uint64_t>(record.last_time));
    p += kMidplaneRecordSize;
  }
  put_u32(p, common::crc32(out.data(),
                           static_cast<std::size_t>(p - out.data())));
  return out;
}

bool decode_index(const unsigned char* data, std::size_t size,
                  SegmentIndex* out) {
  if (size < kIndexFixedSize + 4) return false;
  if (std::memcmp(data, kIndexMagic, 8) != 0) return false;
  if (get_u32(data + 8) != kFormatVersion) return false;
  const std::uint32_t midplane_count = get_u32(data + 52);
  const std::size_t expected =
      kIndexFixedSize + midplane_count * kMidplaneRecordSize + 4;
  if (size != expected) return false;
  if (common::crc32(data, size - 4) != get_u32(data + size - 4)) return false;

  out->count = get_u64(data + 12);
  out->first_ordinal = get_u64(data + 20);
  out->min_time = static_cast<TimeSec>(get_u64(data + 28));
  out->max_time = static_cast<TimeSec>(get_u64(data + 36));
  out->fatal_count = get_u64(data + 44);
  out->midplanes.clear();
  const unsigned char* p = data + kIndexFixedSize;
  for (std::uint32_t i = 0; i < midplane_count; ++i) {
    MidplaneRecord record;
    record.midplane = get_u32(p);
    record.count = get_u64(p + 4);
    record.first_time = static_cast<TimeSec>(get_u64(p + 12));
    record.last_time = static_cast<TimeSec>(get_u64(p + 20));
    out->midplanes.push_back(record);
    p += kMidplaneRecordSize;
  }
  return true;
}

}  // namespace dml::storage
