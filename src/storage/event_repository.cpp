#include "storage/event_repository.hpp"

namespace dml::storage {

std::vector<bgl::Event> materialize(const EventRepository& repo,
                                    TimeSec begin, TimeSec end) {
  std::vector<bgl::Event> events;
  auto cursor = repo.scan(begin, end);
  while (cursor->next(events, kDefaultScanBatch) > 0) {
  }
  return events;
}

std::vector<std::size_t> fatal_per_day(const EventRepository& repo,
                                       TimeSec origin, TimeSec end_time) {
  std::vector<std::size_t> counts;
  if (end_time <= origin) return counts;
  counts.assign(
      static_cast<std::size_t>((end_time - origin + kSecondsPerDay - 1) /
                               kSecondsPerDay),
      0);
  auto cursor = repo.scan(origin, end_time);
  std::vector<bgl::Event> batch;
  while (cursor->next(batch, kDefaultScanBatch) > 0) {
    for (const auto& event : batch) {
      if (event.fatal) {
        ++counts[static_cast<std::size_t>(day_index(event.time, origin))];
      }
    }
    batch.clear();
  }
  return counts;
}

std::vector<TimeSec> fatal_times(const EventRepository& repo) {
  std::vector<TimeSec> times;
  if (repo.size() == 0) return times;
  auto cursor = repo.scan(repo.first_time(), repo.last_time() + 1);
  std::vector<bgl::Event> batch;
  while (cursor->next(batch, kDefaultScanBatch) > 0) {
    for (const auto& event : batch) {
      if (event.fatal) times.push_back(event.time);
    }
    batch.clear();
  }
  return times;
}

}  // namespace dml::storage
