// File naming inside a repository directory.  Sealed segments count up
// from zero; the append tail is always `active.log` and gains its
// sidecar index only when sealed (rename into the numbered series).
#pragma once

#include <cstdint>
#include <cstdio>
#include <string>

namespace dml::storage {

inline constexpr const char* kManifestName = "repo.meta";
inline constexpr const char* kActiveName = "active.log";
inline constexpr const char* kManifestMagic = "# DML-EVENT-REPO v1";

inline std::string join_path(const std::string& dir, const std::string& name) {
  if (dir.empty() || dir.back() == '/') return dir + name;
  return dir + "/" + name;
}

inline std::string segment_name(std::uint64_t number) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "seg-%06llu.log",
                static_cast<unsigned long long>(number));
  return buf;
}

inline std::string index_name(std::uint64_t number) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "seg-%06llu.idx",
                static_cast<unsigned long long>(number));
  return buf;
}

}  // namespace dml::storage
