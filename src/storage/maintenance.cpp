#include "storage/maintenance.hpp"

#include <algorithm>
#include <charconv>
#include <filesystem>
#include <optional>

#include "storage/disk_repository.hpp"
#include "storage/event_repository.hpp"
#include "storage/manifest.hpp"
#include "storage/paths.hpp"
#include "storage/segment.hpp"

namespace dml::storage {
namespace {

namespace fs = std::filesystem;

std::optional<std::uint64_t> parse_segment_name(const std::string& name) {
  if (name.size() < 4 + 6 + 4) return std::nullopt;
  if (name.compare(0, 4, "seg-") != 0) return std::nullopt;
  if (name.compare(name.size() - 4, 4, ".log") != 0) return std::nullopt;
  const char* first = name.data() + 4;
  const char* last = name.data() + name.size() - 4;
  std::uint64_t number = 0;
  const auto [ptr, ec] = std::from_chars(first, last, number);
  if (ec != std::errc{} || ptr != last) return std::nullopt;
  return number;
}

}  // namespace

VerifyReport verify_repository(const std::string& dir) {
  VerifyReport report;
  const auto issue = [&report](std::string what) {
    report.issues.push_back(std::move(what));
  };

  std::string error;
  const auto manifest = read_manifest(dir, &error);
  if (!manifest) {
    issue("manifest: " + error);
    return report;  // nothing else is interpretable without it
  }

  std::vector<std::uint64_t> sealed;
  for (const auto& entry : fs::directory_iterator(dir)) {
    const std::string name = entry.path().filename().string();
    if (name.size() > 4 && name.compare(name.size() - 4, 4, ".tmp") == 0) {
      issue("stray temp file: " + name);
      continue;
    }
    if (const auto number = parse_segment_name(name)) {
      sealed.push_back(*number);
    }
  }
  std::sort(sealed.begin(), sealed.end());
  for (std::size_t i = 0; i < sealed.size(); ++i) {
    if (sealed[i] != i) {
      issue("sealed segments not contiguous: missing seg " +
            std::to_string(i));
      return report;
    }
  }

  std::uint64_t running_total = 0;
  TimeSec prev_last = 0;
  bool any_records = false;
  const auto check_segment = [&](const std::string& file_name,
                                 bool is_active) {
    const std::string path = join_path(dir, file_name);
    const MappedFile map = MappedFile::open(path);
    const SegmentScan scan = scan_segment(map.data(), map.size());
    report.bytes += map.size();
    if (!scan.header_ok) {
      issue(file_name + ": corrupt header");
      return;
    }
    if (scan.torn_bytes > 0) {
      if (is_active) {
        report.active_torn_bytes = scan.torn_bytes;
      } else {
        issue(file_name + ": " + std::to_string(scan.torn_bytes) +
              " torn bytes in a sealed segment");
      }
    }
    if (scan.header.first_ordinal != running_total) {
      issue(file_name + ": first ordinal " +
            std::to_string(scan.header.first_ordinal) + " != expected " +
            std::to_string(running_total));
    }
    if (scan.valid_records > 0) {
      if (any_records && scan.index.min_time < prev_last) {
        issue(file_name + ": starts at " +
              std::to_string(scan.index.min_time) +
              ", before previous segment's last record at " +
              std::to_string(prev_last));
      }
      if (!any_records) report.first_time = scan.index.min_time;
      any_records = true;
      prev_last = scan.index.max_time;
      report.last_time = scan.index.max_time;
      ++report.segments;
    }
    if (!is_active) {
      const std::string idx = join_path(
          dir, index_name(parse_segment_name(file_name).value()));
      if (!fs::exists(idx)) {
        issue(file_name + ": sidecar index missing");
      } else {
        SegmentIndex stored;
        const MappedFile idx_map = MappedFile::open(idx);
        report.bytes += idx_map.size();
        if (!decode_index(idx_map.data(), idx_map.size(), &stored)) {
          issue(file_name + ": sidecar index corrupt");
        } else if (!(stored == scan.index)) {
          issue(file_name +
                ": sidecar index disagrees with segment contents");
        }
      }
    }
    running_total += scan.valid_records;
    report.records += scan.valid_records;
    report.fatal_records += scan.index.fatal_count;
  };

  for (std::uint64_t number = 0; number < sealed.size(); ++number) {
    check_segment(segment_name(number), /*is_active=*/false);
  }
  const std::string active_path = join_path(dir, kActiveName);
  if (fs::exists(active_path)) {
    check_segment(kActiveName, /*is_active=*/true);
  }
  return report;
}

CompactStats compact_repository(const std::string& src_dir,
                                const std::string& dst_dir,
                                const LogWriterOptions& options) {
  const OnDiskRepository source(src_dir);
  CompactStats stats;
  stats.segments_before = source.segment_count();

  LogWriterOptions dst_options = options;
  dst_options.threshold = source.manifest().threshold;
  LogWriter writer(dst_dir, source.manifest().machine, dst_options);
  if (!source.empty()) {
    auto cursor =
        source.scan(source.first_time(), source.last_time() + 1);
    std::vector<bgl::Event> batch;
    while (true) {
      batch.clear();
      if (cursor->next(batch, kDefaultScanBatch) == 0) break;
      for (const bgl::Event& event : batch) writer.append(event);
    }
  }
  writer.close();
  stats.records = writer.appended();
  stats.segments_after =
      writer.sealed_segments() + (writer.appended() > 0 ? 1 : 0);
  return stats;
}

}  // namespace dml::storage
