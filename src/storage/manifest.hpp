// The repository manifest (`repo.meta`): a tiny text file naming the
// machine the log belongs to and the writer options baked into the
// directory.  Written once at create time through temp + fsync + rename
// so a repository is never visible half-initialised.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

namespace dml::storage {

struct Manifest {
  std::string machine;
  std::size_t segment_bytes = 4u << 20;
  /// Preprocessing threshold the events were ingested with (recorded so
  /// `dmlfp run --repo` can refuse a mismatched --window pipeline).
  std::int64_t threshold = 300;
};

/// Creates `dir` if needed and writes the manifest durably; throws on
/// I/O failure or if a manifest already exists.
void write_manifest(const std::string& dir, const Manifest& manifest);

/// nullopt (with *error filled) on missing/malformed manifest.
std::optional<Manifest> read_manifest(const std::string& dir,
                                      std::string* error = nullptr);

}  // namespace dml::storage
