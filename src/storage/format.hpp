// On-disk layouts of the segmented event log (DESIGN.md §11).
//
// A repository directory holds:
//   repo.meta          text manifest (magic line, machine, options)
//   seg-NNNNNN.log     sealed segments (immutable once renamed in)
//   seg-NNNNNN.idx     sidecar index per sealed segment
//   active.log         the append tail (no index until sealed)
//
// Segment file = 32-byte header + fixed-stride records.  Every record
// carries its own CRC-32, so a torn or garbage tail is detectable record
// by record; the fixed stride makes seek-by-time a plain binary search
// over the mmap'd body (times are non-decreasing within a segment).
//
// Event record (24 bytes, little-endian):
//   0  time            i64
//   8  location packed u32
//   12 job_id          u32
//   16 category        u16
//   18 fatal           u8  (0/1)
//   19 pad             u8  (0)
//   20 crc32           u32 of bytes [0, 20)
//
// Sidecar index = whole-segment summary (count, time range, fatal
// count) plus midplane address records (per enclosing midplane: event
// count and time range — the BigWorld message_logger address-record
// idea, used by `dmlfp verify` and the sharded feed accounting), all
// under one trailing CRC.  An index is always rebuildable from its
// segment, so a crash between sealing a segment and writing its index
// self-heals on the next open.
//
// All integers are little-endian on disk regardless of host order.
#pragma once

#include <cstdint>
#include <vector>

#include "bgl/record.hpp"

namespace dml::storage {

inline constexpr std::size_t kEventRecordSize = 24;
inline constexpr std::size_t kSegmentHeaderSize = 32;

inline constexpr unsigned char kSegmentMagic[8] = {'D', 'M', 'L', 'S',
                                                   'E', 'G', '1', '\0'};
inline constexpr unsigned char kIndexMagic[8] = {'D', 'M', 'L', 'I',
                                                 'D', 'X', '1', '\0'};
inline constexpr std::uint32_t kFormatVersion = 1;

/// Fixed per-segment preamble.  `first_ordinal` is the zero-based global
/// ordinal of the segment's first record, so any record's position in
/// the whole log is known without summing earlier segments.
struct SegmentHeader {
  std::uint32_t version = kFormatVersion;
  std::uint64_t first_ordinal = 0;
};

void encode_event(const bgl::Event& event,
                  unsigned char out[kEventRecordSize]);
/// Returns false on CRC mismatch (torn or corrupt record).
bool decode_event(const unsigned char* in, bgl::Event* out);
/// The record's timestamp without CRC validation — the binary-search
/// probe (validated records only).
TimeSec decode_event_time(const unsigned char* in);

void encode_segment_header(const SegmentHeader& header,
                           unsigned char out[kSegmentHeaderSize]);
/// Returns false on bad magic, version, stride, or CRC.
bool decode_segment_header(const unsigned char* in, SegmentHeader* out);

/// One midplane address record: where (in time) one midplane's events
/// live inside the segment.
struct MidplaneRecord {
  std::uint32_t midplane = 0;  ///< bgl::Location::packed() of the midplane
  std::uint64_t count = 0;
  TimeSec first_time = 0;
  TimeSec last_time = 0;

  friend bool operator==(const MidplaneRecord&,
                         const MidplaneRecord&) = default;
};

/// Whole-segment summary, accumulated record by record while writing
/// (or rebuilt by scanning a sealed segment).
struct SegmentIndex {
  std::uint64_t count = 0;
  std::uint64_t first_ordinal = 0;
  TimeSec min_time = 0;
  TimeSec max_time = 0;
  std::uint64_t fatal_count = 0;
  /// Sorted by `midplane` for deterministic serialization.
  std::vector<MidplaneRecord> midplanes;

  /// Accumulates one appended event (events arrive in time order).
  void note(const bgl::Event& event);

  friend bool operator==(const SegmentIndex&, const SegmentIndex&) = default;
};

std::vector<unsigned char> encode_index(const SegmentIndex& index);
/// Returns false on bad magic, version, truncation, or CRC.
bool decode_index(const unsigned char* data, std::size_t size,
                  SegmentIndex* out);

}  // namespace dml::storage
