// Read side of one segment file: an RAII read-only memory mapping plus
// the validating scanner that turns raw bytes into "N intact records,
// M torn trailing bytes" — the recovery primitive every open path
// (writer restart, repository open, verify) is built on.
#pragma once

#include <cstdint>
#include <string>

#include "storage/format.hpp"

namespace dml::storage {

/// Read-only mmap of a whole file.  Move-only; unmapped on destruction.
/// A zero-length file maps to {nullptr, 0}.
class MappedFile {
 public:
  MappedFile() = default;
  ~MappedFile();

  MappedFile(MappedFile&& other) noexcept;
  MappedFile& operator=(MappedFile&& other) noexcept;
  MappedFile(const MappedFile&) = delete;
  MappedFile& operator=(const MappedFile&) = delete;

  /// Maps `path` read-only; throws std::runtime_error on any failure.
  static MappedFile open(const std::string& path);

  const unsigned char* data() const { return data_; }
  std::size_t size() const { return size_; }
  bool mapped() const { return data_ != nullptr || size_ == 0; }

 private:
  const unsigned char* data_ = nullptr;
  std::size_t size_ = 0;
};

/// Result of validating a segment image front to back.  `valid_bytes`
/// (header + intact records) is the truncation point that recovers the
/// file; anything beyond it is the torn tail.
struct SegmentScan {
  bool header_ok = false;
  SegmentHeader header;
  std::uint64_t valid_records = 0;
  /// Bytes from offset 0 through the last intact record.
  std::uint64_t valid_bytes = 0;
  /// Trailing bytes past the last intact record (0 for a clean file).
  std::uint64_t torn_bytes = 0;
  /// Summary rebuilt from the intact records (first_ordinal filled from
  /// the header).
  SegmentIndex index;
};

/// Walks a segment image: header, then per-record CRC + non-decreasing
/// time validation, stopping at the first record that fails either.  A
/// failed (or short) header yields header_ok == false with the whole
/// file counted as torn.
SegmentScan scan_segment(const unsigned char* data, std::size_t size);

/// First record index in [records, records + count) with time >= t —
/// the in-segment half of seek-by-time.  Records must be intact (their
/// times are read without CRC checks).
std::uint64_t lower_bound_time(const unsigned char* records,
                               std::uint64_t count, TimeSec t);

}  // namespace dml::storage
