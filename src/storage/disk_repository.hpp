// Read side of the segmented on-disk event log: an EventRepository over
// a repository directory written by LogWriter.
//
// Opening reads the manifest and every sidecar index (a missing or
// corrupt index is rebuilt in memory by scanning its segment — the
// read side never writes) and validates the active tail, silently
// ignoring a torn suffix the same way writer recovery would truncate
// it.  Segment bodies are NOT touched at open: they are mmap'd lazily,
// one at a time, the first time a scan or count enters them, and stay
// cached for the repository's lifetime.
//
// Seek-by-time is two-level: binary search over the per-segment time
// ranges (indexes, in memory), then binary search over the fixed-stride
// records of the mmap'd boundary segment — O(log segments + log
// records/segment) to position a cursor anywhere in a multi-month log.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "common/annotations.hpp"
#include "storage/event_repository.hpp"
#include "storage/manifest.hpp"
#include "storage/segment.hpp"

namespace dml::storage {

/// What open() observed (read-only analogue of RecoveryInfo).
struct OpenInfo {
  /// Torn bytes ignored at the active tail (0 for a clean log).
  std::uint64_t torn_bytes_ignored = 0;
  /// Sidecar indexes that were missing/corrupt and rebuilt in memory.
  std::size_t indexes_rebuilt = 0;
};

class OnDiskRepository : public EventRepository {
 public:
  /// Opens `dir`; throws std::runtime_error on a missing manifest,
  /// non-contiguous segments, or an unreadable sealed segment.
  explicit OnDiskRepository(const std::string& dir);
  ~OnDiskRepository() override;

  OnDiskRepository(const OnDiskRepository&) = delete;
  OnDiskRepository& operator=(const OnDiskRepository&) = delete;

  // EventRepository:
  std::size_t size() const override { return total_records_; }
  TimeSec first_time() const override { return first_time_; }
  TimeSec last_time() const override { return last_time_; }
  std::unique_ptr<EventCursor> scan(TimeSec begin, TimeSec end)
      const override;
  std::size_t fatal_count_between(TimeSec begin, TimeSec end) const override;
  IoStats io_stats() const override;

  const std::string& dir() const { return dir_; }
  const Manifest& manifest() const { return manifest_; }
  const OpenInfo& open_info() const { return open_info_; }
  /// Sealed segments plus the active tail when it has records.
  std::size_t segment_count() const { return segments_.size(); }

 private:
  friend class DiskCursor;

  struct Segment {
    std::string path;
    SegmentIndex index;
    /// Lazily mapped body; nullopt until first touched.  For the active
    /// tail only the intact prefix is exposed (torn bytes clipped).
    mutable std::optional<MappedFile> map;
    /// Bytes of `map` that hold intact records (header excluded).
    std::uint64_t record_bytes = 0;
  };

  /// Maps segment `i` if needed and returns its record base pointer
  /// (nullptr for an empty segment).  Thread-safe.
  const unsigned char* records_of(std::size_t i) const;

  void add_io(const IoStats& delta) const;

  std::string dir_;
  Manifest manifest_;
  OpenInfo open_info_;
  std::vector<Segment> segments_;
  std::uint64_t total_records_ = 0;
  TimeSec first_time_ = 0;
  TimeSec last_time_ = 0;

  /// I/O spent inside the constructor (index rebuilds, tail scan);
  /// written before any other thread can see the object, so unguarded.
  IoStats io_unlocked_;

  mutable common::Mutex mutex_;
  mutable IoStats io_ DML_GUARDED_BY(mutex_);
};

}  // namespace dml::storage
