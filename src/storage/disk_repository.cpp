#include "storage/disk_repository.hpp"

#include <algorithm>
#include <charconv>
#include <chrono>
#include <filesystem>
#include <stdexcept>

#include "common/check.hpp"
#include "storage/paths.hpp"

namespace dml::storage {
namespace {

namespace fs = std::filesystem;
using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

std::optional<std::uint64_t> parse_segment_name(const std::string& name) {
  if (name.size() < 4 + 6 + 4) return std::nullopt;
  if (name.compare(0, 4, "seg-") != 0) return std::nullopt;
  if (name.compare(name.size() - 4, 4, ".log") != 0) return std::nullopt;
  const char* first = name.data() + 4;
  const char* last = name.data() + name.size() - 4;
  std::uint64_t number = 0;
  const auto [ptr, ec] = std::from_chars(first, last, number);
  if (ec != std::errc{} || ptr != last) return std::nullopt;
  return number;
}

}  // namespace

/// Streams [begin, end) across segment boundaries.  Holds only indices
/// into the owning repository; the mmap cache there keeps record
/// pointers valid for the repository's lifetime.
class DiskCursor : public EventCursor {
 public:
  DiskCursor(const OnDiskRepository& repo, TimeSec begin, TimeSec end)
      : repo_(repo), end_(end) {
    // Outer seek: first segment that can hold a record with time >=
    // begin (segment max times are non-decreasing across the log).
    const auto& segments = repo_.segments_;
    while (segment_ < segments.size() &&
           (segments[segment_].index.count == 0 ||
            segments[segment_].index.max_time < begin)) {
      ++segment_;
    }
    if (segment_ >= segments.size()) return;
    // Inner seek: binary search the fixed-stride records.
    const unsigned char* base = repo_.records_of(segment_);
    record_ = lower_bound_time(base, segments[segment_].index.count, begin);
  }

  std::size_t next(std::vector<bgl::Event>& out, std::size_t max) override {
    const auto start = Clock::now();
    std::size_t produced = 0;
    std::uint64_t records_decoded = 0;
    const auto& segments = repo_.segments_;
    while (produced < max && segment_ < segments.size()) {
      const SegmentIndex& index = segments[segment_].index;
      if (index.count == 0 || record_ >= index.count) {
        ++segment_;
        record_ = 0;
        continue;
      }
      if (index.min_time >= end_) break;  // everything later is >= end
      const unsigned char* base = repo_.records_of(segment_);
      while (produced < max && record_ < index.count) {
        bgl::Event event;
        if (!decode_event(base + record_ * kEventRecordSize, &event)) {
          throw std::runtime_error(
              "storage: CRC failure in " + segments[segment_].path +
              " record " + std::to_string(record_) +
              " (corruption after open)");
        }
        ++records_decoded;
        if (event.time >= end_) {
          segment_ = segments.size();  // exhausted
          break;
        }
        out.push_back(event);
        ++produced;
        ++record_;
      }
    }
    IoStats delta;
    delta.bytes_read = records_decoded * kEventRecordSize;
    delta.read_seconds = seconds_since(start);
    repo_.add_io(delta);
    return produced;
  }

 private:
  const OnDiskRepository& repo_;
  TimeSec end_;
  std::size_t segment_ = 0;
  std::uint64_t record_ = 0;
};

OnDiskRepository::OnDiskRepository(const std::string& dir) : dir_(dir) {
  std::string error;
  const auto manifest = read_manifest(dir_, &error);
  if (!manifest) {
    throw std::runtime_error("storage: not a repository (" + dir_ +
                             "): " + error);
  }
  manifest_ = *manifest;

  std::vector<std::uint64_t> sealed;
  for (const auto& entry : fs::directory_iterator(dir_)) {
    if (const auto number =
            parse_segment_name(entry.path().filename().string())) {
      sealed.push_back(*number);
    }
  }
  std::sort(sealed.begin(), sealed.end());
  for (std::size_t i = 0; i < sealed.size(); ++i) {
    if (sealed[i] != i) {
      throw std::runtime_error("storage: sealed segments not contiguous in " +
                               dir_ + " (missing seg " + std::to_string(i) +
                               ")");
    }
  }

  std::uint64_t running_total = 0;
  for (std::uint64_t number = 0; number < sealed.size(); ++number) {
    Segment segment;
    segment.path = join_path(dir_, segment_name(number));
    const std::string idx_path = join_path(dir_, index_name(number));
    bool index_ok = false;
    if (fs::exists(idx_path)) {
      const MappedFile map = MappedFile::open(idx_path);
      index_ok = decode_index(map.data(), map.size(), &segment.index);
    }
    if (!index_ok) {
      // Read-side self-heal: rebuild the summary by scanning the
      // segment (kept mapped — we paid for the pages already).
      const auto start = Clock::now();
      MappedFile map = MappedFile::open(segment.path);
      const SegmentScan scan = scan_segment(map.data(), map.size());
      if (!scan.header_ok) {
        throw std::runtime_error("storage: sealed segment " + segment.path +
                                 " has a corrupt header");
      }
      segment.index = scan.index;
      segment.map = std::move(map);
      ++open_info_.indexes_rebuilt;
      io_unlocked_.segments_opened += 1;
      io_unlocked_.bytes_read += scan.valid_bytes;
      io_unlocked_.map_seconds += seconds_since(start);
    }
    if (segment.index.first_ordinal != running_total) {
      throw std::runtime_error(
          "storage: " + segment.path + " first ordinal " +
          std::to_string(segment.index.first_ordinal) + " != expected " +
          std::to_string(running_total));
    }
    running_total += segment.index.count;
    segments_.push_back(std::move(segment));
  }

  // The active tail: scan it (no index exists), ignore a torn suffix.
  const std::string active_path = join_path(dir_, kActiveName);
  if (fs::exists(active_path)) {
    const auto start = Clock::now();
    MappedFile map = MappedFile::open(active_path);
    const SegmentScan scan = scan_segment(map.data(), map.size());
    io_unlocked_.segments_opened += 1;
    io_unlocked_.bytes_read += scan.valid_bytes;
    io_unlocked_.map_seconds += seconds_since(start);
    open_info_.torn_bytes_ignored += scan.torn_bytes;
    if (scan.header_ok) {
      if (scan.header.first_ordinal != running_total) {
        throw std::runtime_error(
            "storage: active.log first ordinal " +
            std::to_string(scan.header.first_ordinal) + " != expected " +
            std::to_string(running_total) + " in " + dir_);
      }
      if (scan.valid_records > 0) {
        Segment segment;
        segment.path = active_path;
        segment.index = scan.index;
        segment.map = std::move(map);
        running_total += scan.valid_records;
        segments_.push_back(std::move(segment));
      }
    }
  }

  total_records_ = running_total;
  bool any = false;
  for (const Segment& segment : segments_) {
    if (segment.index.count == 0) continue;
    if (!any) first_time_ = segment.index.min_time;
    any = true;
    last_time_ = std::max(last_time_, segment.index.max_time);
  }
}

OnDiskRepository::~OnDiskRepository() = default;

const unsigned char* OnDiskRepository::records_of(std::size_t i) const {
  const Segment& segment = segments_[i];
  if (segment.index.count == 0) return nullptr;
  common::MutexLock lock(mutex_);
  if (!segment.map.has_value()) {
    const auto start = Clock::now();
    MappedFile map = MappedFile::open(segment.path);
    const std::size_t need =
        kSegmentHeaderSize + segment.index.count * kEventRecordSize;
    if (map.size() < need) {
      throw std::runtime_error("storage: " + segment.path +
                               " shrank under an open repository");
    }
    segment.map = std::move(map);
    io_.segments_opened += 1;
    io_.map_seconds += seconds_since(start);
  }
  return segment.map->data() + kSegmentHeaderSize;
}

std::unique_ptr<EventCursor> OnDiskRepository::scan(TimeSec begin,
                                                    TimeSec end) const {
  return std::make_unique<DiskCursor>(*this, begin, end);
}

std::size_t OnDiskRepository::fatal_count_between(TimeSec begin,
                                                  TimeSec end) const {
  if (begin >= end) return 0;
  std::size_t count = 0;
  for (std::size_t i = 0; i < segments_.size(); ++i) {
    const SegmentIndex& index = segments_[i].index;
    if (index.count == 0 || index.max_time < begin) continue;
    if (index.min_time >= end) break;
    if (index.min_time >= begin && index.max_time < end) {
      count += index.fatal_count;  // fully covered: the index suffices
      continue;
    }
    // Boundary segment: narrow with two in-segment binary searches,
    // then decode just the overlap.
    const auto start = Clock::now();
    const unsigned char* base = records_of(i);
    const std::uint64_t lo = lower_bound_time(base, index.count, begin);
    const std::uint64_t hi = lower_bound_time(base, index.count, end);
    for (std::uint64_t r = lo; r < hi; ++r) {
      bgl::Event event;
      if (!decode_event(base + r * kEventRecordSize, &event)) {
        throw std::runtime_error("storage: CRC failure in " +
                                 segments_[i].path + " record " +
                                 std::to_string(r));
      }
      if (event.fatal) ++count;
    }
    IoStats delta;
    delta.bytes_read = (hi - lo) * kEventRecordSize;
    delta.read_seconds = seconds_since(start);
    add_io(delta);
  }
  return count;
}

IoStats OnDiskRepository::io_stats() const {
  common::MutexLock lock(mutex_);
  IoStats total = io_unlocked_;
  total += io_;
  return total;
}

void OnDiskRepository::add_io(const IoStats& delta) const {
  common::MutexLock lock(mutex_);
  io_ += delta;
}

}  // namespace dml::storage
