#include "storage/segment.hpp"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>
#include <utility>

namespace dml::storage {

MappedFile::~MappedFile() {
  if (data_ != nullptr) {
    ::munmap(const_cast<unsigned char*>(data_), size_);
  }
}

MappedFile::MappedFile(MappedFile&& other) noexcept
    : data_(std::exchange(other.data_, nullptr)),
      size_(std::exchange(other.size_, 0)) {}

MappedFile& MappedFile::operator=(MappedFile&& other) noexcept {
  if (this != &other) {
    if (data_ != nullptr) {
      ::munmap(const_cast<unsigned char*>(data_), size_);
    }
    data_ = std::exchange(other.data_, nullptr);
    size_ = std::exchange(other.size_, 0);
  }
  return *this;
}

MappedFile MappedFile::open(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) {
    throw std::runtime_error("storage: cannot open " + path + ": " +
                             std::strerror(errno));
  }
  struct stat st {};
  if (::fstat(fd, &st) != 0) {
    const int err = errno;
    ::close(fd);
    throw std::runtime_error("storage: cannot stat " + path + ": " +
                             std::strerror(err));
  }
  MappedFile file;
  file.size_ = static_cast<std::size_t>(st.st_size);
  if (file.size_ > 0) {
    void* map = ::mmap(nullptr, file.size_, PROT_READ, MAP_PRIVATE, fd, 0);
    if (map == MAP_FAILED) {
      const int err = errno;
      ::close(fd);
      throw std::runtime_error("storage: cannot mmap " + path + ": " +
                               std::strerror(err));
    }
    file.data_ = static_cast<const unsigned char*>(map);
  }
  ::close(fd);
  return file;
}

SegmentScan scan_segment(const unsigned char* data, std::size_t size) {
  SegmentScan scan;
  if (size < kSegmentHeaderSize ||
      !decode_segment_header(data, &scan.header)) {
    scan.torn_bytes = size;
    return scan;
  }
  scan.header_ok = true;
  scan.valid_bytes = kSegmentHeaderSize;
  scan.index.first_ordinal = scan.header.first_ordinal;

  const unsigned char* p = data + kSegmentHeaderSize;
  std::size_t remaining = size - kSegmentHeaderSize;
  TimeSec last_time = 0;
  while (remaining >= kEventRecordSize) {
    bgl::Event event;
    if (!decode_event(p, &event)) break;
    if (scan.valid_records > 0 && event.time < last_time) break;
    last_time = event.time;
    scan.index.note(event);
    ++scan.valid_records;
    scan.valid_bytes += kEventRecordSize;
    p += kEventRecordSize;
    remaining -= kEventRecordSize;
  }
  scan.torn_bytes = size - scan.valid_bytes;
  return scan;
}

std::uint64_t lower_bound_time(const unsigned char* records,
                               std::uint64_t count, TimeSec t) {
  std::uint64_t lo = 0;
  std::uint64_t hi = count;
  while (lo < hi) {
    const std::uint64_t mid = lo + (hi - lo) / 2;
    if (decode_event_time(records + mid * kEventRecordSize) < t) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

}  // namespace dml::storage
