// Offline repository maintenance: the deep checker behind
// `dmlfp verify` and the rewriter behind `dmlfp compact`.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "storage/log_writer.hpp"

namespace dml::storage {

/// Everything `verify_repository` concluded.  `ok()` means the
/// repository is fully readable and internally consistent; `issues`
/// lists every violation found (the check does not stop at the first).
struct VerifyReport {
  std::vector<std::string> issues;

  std::uint64_t segments = 0;  ///< sealed + active-with-records
  std::uint64_t records = 0;
  std::uint64_t fatal_records = 0;
  std::uint64_t bytes = 0;
  TimeSec first_time = 0;
  TimeSec last_time = 0;
  /// Torn bytes found at the active tail.  Benign (a reopen truncates
  /// them) and therefore reported separately, not as an issue.
  std::uint64_t active_torn_bytes = 0;

  bool ok() const { return issues.empty(); }
};

/// Full-scan audit of a repository directory: manifest, per-record
/// CRCs, in- and cross-segment time order, ordinal continuity, and
/// sidecar indexes (including the midplane address records) re-derived
/// from the data and compared against what is stored.  Read-only.
VerifyReport verify_repository(const std::string& dir);

struct CompactStats {
  std::uint64_t records = 0;
  std::uint64_t segments_before = 0;
  std::uint64_t segments_after = 0;
};

/// Rewrites `src_dir` into a fresh repository at `dst_dir` (which must
/// not already hold one): torn tails are dropped, undersized sealed
/// segments are merged into full ones of `options.segment_bytes`, and
/// every index is freshly built.  The machine name and threshold carry
/// over from the source manifest.
CompactStats compact_repository(const std::string& src_dir,
                                const std::string& dst_dir,
                                const LogWriterOptions& options = {});

}  // namespace dml::storage
