// EventRepository — the pluggable event data plane (paper §2.1's DB2
// central repository, abstracted).  Everything downstream of
// preprocessing (learners, driver, engines, benches) consumes events
// through this interface, so the same pipeline runs off an in-memory
// logio::EventStore or an mmap-backed on-disk log
// (storage::OnDiskRepository) without caring which.
//
// The contract is deliberately narrow: time bounds, counts, and
// cursor-based range scans.  A cursor streams events in canonical order
// (bgl::EventTimeOrder: time, then category, then packed location) in
// caller-sized batches, so a multi-month archive is never materialised
// wholesale.  Implementations with random access (the in-memory store)
// are free to make scans cheap views; disk implementations seek by time
// in O(log n) via their segment indexes.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "bgl/record.hpp"

namespace dml::storage {

/// Streaming read of one time range.  Not thread-safe; one cursor per
/// reader.  Events arrive in canonical order, each exactly once.
class EventCursor {
 public:
  virtual ~EventCursor() = default;

  /// Appends up to `max` events to `out` (which is NOT cleared — the
  /// caller owns the buffer discipline) and returns how many were
  /// appended; 0 means the range is exhausted.
  virtual std::size_t next(std::vector<bgl::Event>& out, std::size_t max) = 0;
};

/// Cumulative read-side I/O accounting (zero for in-memory stores).
/// `map_seconds` is wall time spent mapping segment files into memory,
/// `read_seconds` wall time decoding records out of the mappings — the
/// "mmap vs read" split of the --profile log-I/O stage.
struct IoStats {
  std::uint64_t bytes_read = 0;
  std::uint64_t segments_opened = 0;
  double map_seconds = 0.0;
  double read_seconds = 0.0;

  IoStats& operator+=(const IoStats& other) {
    bytes_read += other.bytes_read;
    segments_opened += other.segments_opened;
    map_seconds += other.map_seconds;
    read_seconds += other.read_seconds;
    return *this;
  }
  friend IoStats operator-(IoStats a, const IoStats& b) {
    a.bytes_read -= b.bytes_read;
    a.segments_opened -= b.segments_opened;
    a.map_seconds -= b.map_seconds;
    a.read_seconds -= b.read_seconds;
    return a;
  }
};

class EventRepository {
 public:
  virtual ~EventRepository() = default;

  /// Total events held.
  virtual std::size_t size() const = 0;
  bool empty() const { return size() == 0; }

  /// Timestamp bounds; both 0 when empty.
  virtual TimeSec first_time() const = 0;
  virtual TimeSec last_time() const = 0;

  /// Cursor over events with time in [begin, end).
  virtual std::unique_ptr<EventCursor> scan(TimeSec begin, TimeSec end)
      const = 0;

  /// Number of fatal events in [begin, end).
  virtual std::size_t fatal_count_between(TimeSec begin, TimeSec end)
      const = 0;

  /// Read-side I/O accounting since open (all zeros for in-memory
  /// implementations — the default).
  virtual IoStats io_stats() const { return {}; }
};

/// Collects [begin, end) into a vector (for bounded ranges only — an
/// interval's test span, a warm-up window — never the whole archive).
std::vector<bgl::Event> materialize(const EventRepository& repo,
                                    TimeSec begin, TimeSec end);

/// Fatal events per day relative to `origin` covering [origin, end_time)
/// — the Figure 4 series, computed with one scan.
std::vector<std::size_t> fatal_per_day(const EventRepository& repo,
                                       TimeSec origin, TimeSec end_time);

/// Timestamps of all fatal events in ascending order (one scan).
std::vector<TimeSec> fatal_times(const EventRepository& repo);

/// Default batch size for cursor loops; large enough to amortise the
/// virtual call, small enough to stay cache-resident.
inline constexpr std::size_t kDefaultScanBatch = 4096;

}  // namespace dml::storage
